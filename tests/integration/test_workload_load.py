"""Integration: workload runs are deterministic; record/replay is a
byte-exact regression oracle.

The load experiment's acceptance contract: for a given (spec, r,
seed), the run produces a byte-identical canonical trace and SLO
snapshot across repetitions, across both event schedulers
(``REPRO_SCHEDULER=wheel|heap``), and under trace replay on a fresh
deployment.
"""

import json

import pytest

from repro.campaign.tasks import run_task
from repro.experiments import load_exp
from repro.experiments.load_exp import ci_spec, replay_load, run_load
from repro.workload import WorkloadSpec
from repro.workload.trace import load_trace_lines, replay_ops

SMALL = dict(duration=20.0, warmup=4 * 60.0, queriers=4, publishers=1,
             catalog={"popularity": "zipf", "size": 40, "skew": 1.0})


def _spec(**overrides):
    return ci_spec(**{**SMALL, **overrides})


def test_same_seed_same_run():
    a = run_load(_spec(), r=6, seed=9, record=True)
    b = run_load(_spec(), r=6, seed=9, record=True)
    assert a.digest() == b.digest()
    assert json.dumps(a.snapshot(), sort_keys=True) == json.dumps(
        b.snapshot(), sort_keys=True
    )
    assert a.slo.total_requests() > 50


def test_different_seeds_differ():
    a = run_load(_spec(), r=6, seed=1, record=True)
    b = run_load(_spec(), r=6, seed=2, record=True)
    assert a.digest() != b.digest()


@pytest.mark.parametrize("scheduler", ["wheel", "heap"])
def test_scheduler_invariance(monkeypatch, scheduler):
    """Both schedulers produce the same bytes as the default run."""
    reference = run_load(_spec(), r=5, seed=4, record=True)
    monkeypatch.setenv("REPRO_SCHEDULER", scheduler)
    run = run_load(_spec(), r=5, seed=4, record=True)
    assert run.digest() == reference.digest()
    assert json.dumps(run.snapshot(), sort_keys=True) == json.dumps(
        reference.snapshot(), sort_keys=True
    )


@pytest.mark.parametrize("scheduler", ["wheel", "heap"])
def test_replay_reproduces_trace_and_slo(monkeypatch, tmp_path, scheduler):
    """The recorded trace, re-driven on a fresh deployment (through the
    JSONL file format), reproduces the original run byte-for-byte."""
    monkeypatch.setenv("REPRO_SCHEDULER", scheduler)
    original = run_load(_spec(), r=6, seed=7, record=True)
    path = original.recorder.write(tmp_path / "trace.jsonl")

    ops = replay_ops(load_trace_lines(path))
    assert ops  # the run did issue traffic
    replayed = replay_load(_spec(), r=6, ops=ops, seed=7)

    assert replayed.digest() == original.digest()
    assert json.dumps(replayed.snapshot(), sort_keys=True) == json.dumps(
        original.snapshot(), sort_keys=True
    )


def test_replay_on_wrong_seed_diverges():
    """The oracle has teeth: replaying against a different overlay seed
    changes latencies, so the trace bytes differ."""
    original = run_load(_spec(), r=6, seed=7, record=True)
    replayed = replay_load(
        _spec(), r=6, ops=replay_ops(original.recorder.ops), seed=8
    )
    assert replayed.digest() != original.digest()


def test_closed_loop_clients_complete_requests():
    spec = _spec(queriers=0, publishers=1, closed_clients=3,
                 think_mean=0.5, timeout=5.0, retries=1)
    run = run_load(spec, r=5, seed=3)
    snap = run.snapshot()
    assert "load.query" in snap
    entry = snap["load.query"]
    assert entry["requests"] > 10
    assert entry["ok"] + entry["timeout"] + entry["failure"] == entry["requests"]
    closed = [c for c in run.engine.clients if hasattr(c, "completed")]
    assert sum(c.completed for c in closed) == entry["requests"]


def test_mmpp_and_diurnal_specs_run():
    for arrivals in (
        {"kind": "mmpp", "base_rate": 1.0, "burst_rate": 8.0,
         "mean_base_dwell": 10.0, "mean_burst_dwell": 3.0},
        {"kind": "diurnal", "base_rate": 2.0, "amplitude": 0.8,
         "period": 20.0},
    ):
        run = run_load(_spec(arrivals=arrivals), r=5, seed=2)
        assert run.snapshot()["load.query"]["requests"] > 10


def test_rate_scale_increases_offered_load():
    base = run_load(_spec(), r=5, seed=6)
    scaled = run_load(_spec(rate_scale=3.0), r=5, seed=6)
    assert (
        scaled.snapshot()["load.query"]["requests"]
        > base.snapshot()["load.query"]["requests"]
    )


def test_load_campaign_task_is_deterministic():
    params = {"r": 6, "rate": 2.0, "skew": 1.0, "seed": 11,
              "duration": 20.0, "warmup": 4 * 60.0,
              "queriers": 4, "publishers": 1, "catalog_size": 40}
    a = run_task("load", params)
    b = run_task("load", dict(params))
    assert a == b
    assert a["query_requests"] > 0
    assert a["trace_digest"]
    assert json.dumps(a)  # JSON-serializable, as the run store requires


def test_experiment_main_returns_flat_rows(capsys):
    rows = load_exp.main(full=False, seed=1)
    out = capsys.readouterr().out
    assert "load.query" in out
    assert any(r.label == "load.query" for r in rows)
    query = next(r for r in rows if r.label == "load.query")
    assert query.requests > 100
    assert query.p99_ms >= query.p50_ms > 0
    assert 0.0 <= query.timeout_rate <= 1.0
    # flat dataclass rows with a label → the --seeds aggregator works
    from repro.campaign.aggregate import (
        aggregate_records,
        experiment_seed_records,
    )
    records = experiment_seed_records("load", {1: rows})
    agg_rows, _ = aggregate_records(records, campaign="load")
    assert any(
        "load.query" in row.group and row.metric == "p99_ms"
        for row in agg_rows
    )


def test_full_spec_meets_acceptance_floor():
    """The --full sizing covers the ≥100k-request acceptance floor at
    r=150 (sizing arithmetic only; the run itself is `make load-full`)."""
    spec = load_exp.full_spec()
    assert load_exp.FULL_R == 150
    assert spec.expected_requests() >= 100_000
    # and WorkloadSpec round-trips through JSON for campaign embedding
    assert WorkloadSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()
