"""Integration: Figure 2's message walkthrough, at the wire level.

The paper's Figure 2 enumerates the exact messages of a publish and a
lookup on consistent peerviews.  This test pins them with the message
tracer:

* publish — (1) E1's SRDI push to R1, (2) R1's replica copy to R4;
* lookup — (1) E2's query to R2, (2) R2's forward to the replica,
  (3) the replica's forward to E1, (4) E1's response to E2.
"""

from repro.advertisement.peeradv import PeerAdvertisement
from repro.config import PlatformConfig
from repro.discovery.replica import ReplicaFunction
from repro.experiments.table1 import EXAMPLE_HASH, EXAMPLE_MAX_HASH, PAPER_RDV_IDS
from repro.ids.jxtaid import NET_PEER_GROUP_ID, PeerID
from repro.network import Network
from repro.network.site import place_nodes
from repro.peergroup.group import PeerGroup
from repro.sim import HOURS, MINUTES, Simulator
from repro.sim.tracing import MessageTracer


def build_paper_overlay():
    """The exact S of §3.3: R1..R6 with IDs 006..180, E1 on R1, E2 on R2."""
    sim = Simulator(seed=1)
    network = Network(sim)
    config = PlatformConfig().with_overrides(pve_expiration=10 * HOURS)
    replica_fn = ReplicaFunction(
        max_hash=EXAMPLE_MAX_HASH, hash_fn=lambda key: EXAMPLE_HASH
    )
    group = PeerGroup(sim, network, config, replica_fn=replica_fn)
    nodes = place_nodes(8)
    rdvs = []
    for i, int_id in enumerate(PAPER_RDV_IDS):
        pid = PeerID.from_int(NET_PEER_GROUP_ID, int_id)
        cfg = config.with_seeds([rdvs[-1].address] if rdvs else [])
        rdvs.append(
            group.create_rendezvous(nodes[i], name=f"R{i + 1}", config=cfg, peer_id=pid)
        )
    e1 = group.create_edge(nodes[6], seeds=[rdvs[0].address], name="E1")
    e2 = group.create_edge(nodes[7], seeds=[rdvs[1].address], name="E2")
    group.start_all()
    sim.run(until=10 * MINUTES)
    assert group.property_2_satisfied()
    return sim, network, group, rdvs, e1, e2


class TestFigure2Walkthrough:
    def test_publish_is_two_srdi_messages_to_r1_and_r4(self):
        sim, network, group, rdvs, e1, e2 = build_paper_overlay()
        tracer = MessageTracer(network, payload_types=("ResolverSrdiMessage",))
        e1.discovery.publish(
            PeerAdvertisement(e1.peer_id, e1.group_id, "Test"),
            expiration=2 * HOURS,
        )
        e1.discovery.pusher.push_now()
        sim.run(until=sim.now + 30.0)
        srdi = tracer.entries
        assert len(srdi) == 2
        # step 1: E1 -> R1 (its rendezvous)
        assert srdi[0].src == e1.address
        assert srdi[0].dst == rdvs[0].address
        # step 2: R1 -> R4 (the replica for hash 116 is rank 3 = R4)
        assert srdi[1].src == rdvs[0].address
        assert srdi[1].dst == rdvs[3].address
        tracer.detach()

    def test_lookup_is_four_resolver_messages(self):
        sim, network, group, rdvs, e1, e2 = build_paper_overlay()
        e1.discovery.publish(
            PeerAdvertisement(e1.peer_id, e1.group_id, "Test"),
            expiration=2 * HOURS,
        )
        e1.discovery.pusher.push_now()
        sim.run(until=sim.now + 1 * MINUTES)

        tracer = MessageTracer(
            network, payload_types=("ResolverQuery", "ResolverResponse")
        )
        results = []
        e2.discovery.get_remote_advertisements(
            "jxta:PA", "Name", "Test",
            callback=lambda advs, lat: results.append(advs),
        )
        sim.run(until=sim.now + 30.0)
        assert results

        hops = [(e.src, e.dst, e.payload_type) for e in tracer.entries]
        assert hops == [
            # 1. E2 -> R2 (its rendezvous)
            (e2.address, rdvs[1].address, "ResolverQuery"),
            # 2. R2 -> R4 (the computed replica peer)
            (rdvs[1].address, rdvs[3].address, "ResolverQuery"),
            # 3. R4 -> E1 (the publisher)
            (rdvs[3].address, e1.address, "ResolverQuery"),
            # 4. E1 -> E2 (the advertisement, straight back)
            (e1.address, e2.address, "ResolverResponse"),
        ]
        tracer.detach()
