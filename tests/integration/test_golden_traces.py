"""Golden-trace regression tests.

Each scenario in :mod:`repro.obs.golden` is re-run and its canonical
JSONL timeline diffed line-by-line against the committed fixture.  Any
change to protocol message counts, fire order or event timing —
however a refactor smuggles it in — shows up as a diff here.

The traces must also be independent of the scheduler implementation,
so every scenario runs under both ``REPRO_SCHEDULER=wheel`` and
``heap``.

If a test fails after an *intentional* protocol change, regenerate the
fixtures and review the diff like code::

    python scripts/regen_goldens.py
"""

import difflib
import json
from pathlib import Path

import pytest

from repro.obs.golden import GOLDEN_SCENARIOS, SCENARIO_FUNCTIONS

FIXTURE_DIR = Path(__file__).resolve().parent.parent / "fixtures" / "golden"

SCHEDULERS = ("wheel", "heap")


def _fixture_lines(name):
    path = FIXTURE_DIR / GOLDEN_SCENARIOS[name]
    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        "'python scripts/regen_goldens.py'"
    )
    return path.read_text().splitlines()


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIOS))
def test_trace_matches_golden_fixture(name, scheduler, monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULER", scheduler)
    actual = SCENARIO_FUNCTIONS[name]()
    expected = _fixture_lines(name)
    if actual != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected, actual,
                fromfile=f"tests/fixtures/golden/{GOLDEN_SCENARIOS[name]}",
                tofile=f"{name} (re-run, scheduler={scheduler})",
                lineterm="", n=2,
            )
        )
        pytest.fail(
            f"golden trace {name!r} diverged from the committed fixture "
            f"under REPRO_SCHEDULER={scheduler}.\n"
            "If this protocol change is INTENTIONAL, regenerate with\n"
            "    python scripts/regen_goldens.py\n"
            "and commit the fixture diff after reviewing it like code.\n"
            f"First 60 diff lines:\n"
            + "\n".join(diff.splitlines()[:60])
        )


@pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIOS))
def test_fixture_lines_are_canonical_jsonl(name):
    """Committed fixtures are valid, canonically-serialised JSONL."""
    for line in _fixture_lines(name):
        event = json.loads(line)
        assert {"actor", "cat", "name", "t"} <= set(event)
        canonical = json.dumps(
            event, sort_keys=True, separators=(",", ":")
        )
        assert line == canonical

    # timestamps are non-decreasing: the trace is a timeline
    times = [json.loads(line)["t"] for line in _fixture_lines(name)]
    assert times == sorted(times)


def test_publish_lookup_covers_fig2_chain():
    """The 5-peer fixture exercises the paper's Figure 2 walkthrough:
    publish -> SRDI push -> replica index -> remote query -> walk to
    the replica -> forward to the publisher -> response -> completion."""
    lines = _fixture_lines("publish-lookup5")
    names = [json.loads(line)["name"] for line in lines]
    for required in (
        "publish", "push", "index", "query.issued", "query.sent",
        "query.handled", "forward.replica", "forward.publisher",
        "response.sent", "query.completed",
    ):
        assert required in names, f"fixture lost the {required!r} step"
    assert names.index("publish") < names.index("push")
    assert names.index("push") < names.index("query.issued")
    assert names.index("forward.replica") < names.index("forward.publisher")
    assert names.index("response.sent") < names.index("query.completed")
