"""Integration: quantitative shape analysis on live protocol runs."""

from repro.analysis import detect_phases, linear_fit, relative_spread
from repro.experiments.common import run_peerview_overlay
from repro.metrics.series import peerview_size_series
from repro.sim import MINUTES


class TestPeerviewPhases:
    def test_three_phases_detected_at_moderate_scale(self):
        run = run_peerview_overlay(r=48, duration=60 * MINUTES, seed=5)
        series = peerview_size_series(run.log, "rdv-0")
        phases = detect_phases(series, duration=60 * MINUTES)
        assert phases is not None
        # growth completes around PVE_EXPIRATION (20 min), paper §4.1
        assert phases.growth_end <= 30 * MINUTES
        assert phases.peak >= 45
        # the plateau sits below the maximum (Property (2) violated)
        assert phases.plateau_mean < 47.5
        assert phases.plateau_mean > 35
        # fluctuation phase occupies the tail of the run
        assert phases.fluctuation_start < 56 * MINUTES

    def test_peers_evolve_homogeneously(self):
        # "For a same experiment, the value l of each rendezvous peer
        # belonging to S evolves in the same way" (§4.1)
        run = run_peerview_overlay(r=40, duration=40 * MINUTES, seed=5)
        finals = run.overlay.group.peerview_sizes()
        assert relative_spread(finals) < 0.25


class TestPeerviewGrowthShape:
    def test_growth_phase_is_monotone_increasing(self):
        run = run_peerview_overlay(r=40, duration=15 * MINUTES, seed=6, observers=[0])
        series = peerview_size_series(run.log, "rdv-0")
        xs = [60.0 * m for m in range(1, 15)]
        ys = series.sampled(xs)
        fit = linear_fit(xs, ys)
        assert fit.slope > 0
        # growth dominates noise in phase 1
        assert fit.r_squared > 0.5
