"""Campaign warm-start: shared bootstraps build once, results don't move.

The §4 acceptance checks for the checkpoint subsystem at campaign
scale: a multi-task campaign with ``--warm-start`` is at least ~2×
faster than the cold run at ``--jobs 1`` (every task after the first
in a bootstrap group restores instead of rebuilding) while aggregates
stay *byte-identical*; a corrupted checkpoint blob mid-campaign is
quarantined and rebuilt, never trusted.
"""

import time

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    RunnerOptions,
    RunStore,
    write_aggregates,
)
from repro.campaign.progress import ProgressReporter


def load_spec(out):
    """A small rate × skew grid whose four tasks share one bootstrap
    prefix (rate and skew only shape the *measurement* phase)."""
    return CampaignSpec(
        name="load", task_type="load",
        grid={"rate": [1.0, 2.0], "skew": [0.0, 1.0], "seed": [1]},
        base={
            # a long warm-up against a mid-size overlay: the regime the
            # cache exists for (bootstrap ≫ measurement), and the margin
            # the 2× wall-clock assertion below rides on
            "r": 24, "duration": 5.0, "warmup": 3600.0,
            "queriers": 4, "publishers": 2, "catalog_size": 40,
        },
    )


def run_campaign(spec, root, jobs=1, warm_dir=None):
    store = RunStore(root)
    runner = CampaignRunner(
        spec, store,
        RunnerOptions(
            jobs=jobs,
            warm_start=warm_dir is not None,
            checkpoint_dir=str(warm_dir) if warm_dir else None,
        ),
        progress=ProgressReporter(total=0, jobs=jobs, enabled=False),
    )
    started = time.monotonic()
    manifest = runner.run(resume=False)
    return store, manifest, time.monotonic() - started


def results_of(store):
    return {k: r["result"] for k, r in store.completed().items()}


class TestWarmStartEquivalence:
    def test_warm_run_matches_cold_and_is_faster(self, tmp_path):
        spec = load_spec(tmp_path)
        cold_store, cold_mani, cold_wall = run_campaign(
            spec, tmp_path / "cold"
        )
        warm_store, warm_mani, warm_wall = run_campaign(
            spec, tmp_path / "warm", warm_dir=tmp_path / "ckpts"
        )

        assert results_of(warm_store) == results_of(cold_store)
        cold_files = write_aggregates(
            "load", cold_store.completed().values(), tmp_path / "agg-cold"
        )
        warm_files = write_aggregates(
            "load", warm_store.completed().values(), tmp_path / "agg-warm"
        )
        for left, right in zip(cold_files, warm_files):
            assert left.read_bytes() == right.read_bytes()

        # one bootstrap group of four tasks: built once, restored thrice
        assert warm_mani["checkpoint_misses"] == 1
        assert warm_mani["checkpoint_hits"] == 3
        assert warm_mani["checkpoint_saved_seconds_est"] > 0.0
        assert warm_mani["warm_start"] is True
        assert cold_mani.get("warm_start") is not True

        # three of four bootstraps skipped: the warm run must come in
        # well under the cold wall (2× with margin for the restores)
        assert warm_wall < cold_wall / 2.0, (
            f"warm {warm_wall:.2f}s vs cold {cold_wall:.2f}s"
        )

    def test_pool_workers_share_the_store(self, tmp_path):
        """--jobs 2: the group leader builds, members restore; no
        duplicate builds, results identical to a cold serial run."""
        spec = load_spec(tmp_path)
        cold_store, _, _ = run_campaign(spec, tmp_path / "cold")
        warm_store, manifest, _ = run_campaign(
            spec, tmp_path / "warm", jobs=2, warm_dir=tmp_path / "ckpts"
        )
        assert results_of(warm_store) == results_of(cold_store)
        assert manifest["checkpoint_misses"] == 1
        assert manifest["checkpoint_hits"] == 3

    def test_per_task_records_carry_checkpoint_traffic(self, tmp_path):
        spec = load_spec(tmp_path)
        store, _, _ = run_campaign(
            spec, tmp_path / "warm", warm_dir=tmp_path / "ckpts"
        )
        records = list(store.completed().values())
        assert len(records) == 4
        hits = sum(r["checkpoint"]["hits"] for r in records)
        misses = sum(r["checkpoint"]["misses"] for r in records)
        assert (hits, misses) == (3, 1)


class TestCorruptionRecovery:
    def test_corrupted_blob_quarantined_and_rebuilt(self, tmp_path):
        spec = load_spec(tmp_path)
        ckpts = tmp_path / "ckpts"
        first_store, _, _ = run_campaign(
            spec, tmp_path / "first", warm_dir=ckpts
        )

        blobs = sorted(ckpts.rglob("*.ckpt"))
        assert len(blobs) == 1
        raw = bytearray(blobs[0].read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        blobs[0].write_bytes(bytes(raw))

        second_store, manifest, _ = run_campaign(
            spec, tmp_path / "second", warm_dir=ckpts
        )
        # the poisoned blob read as a miss, was quarantined, and the
        # rebuilt checkpoint served the remaining tasks
        assert results_of(second_store) == results_of(first_store)
        assert manifest["checkpoint_misses"] == 1
        assert manifest["checkpoint_hits"] == 3
        assert list(ckpts.rglob("*.corrupt"))
        assert sorted(ckpts.rglob("*.ckpt")) == blobs
