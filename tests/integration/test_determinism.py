"""Integration: runs are bit-for-bit reproducible for a given seed."""

from repro.advertisement import FakeAdvertisement
from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.metrics import EventLog, attach_peerview_logger
from repro.network import Network
from repro.sim import MINUTES, Simulator


def run_scenario(seed):
    sim = Simulator(seed=seed)
    network = Network(sim)
    overlay = build_overlay(
        sim, network, PlatformConfig(),
        OverlayDescription(
            rendezvous_count=10, edge_count=2, edge_attachment=[0, 5]
        ),
    )
    log = EventLog()
    for rdv in overlay.rendezvous:
        attach_peerview_logger(log, rdv.name, rdv.view)
    overlay.start()
    sim.run(until=15 * MINUTES)
    overlay.edges[0].discovery.publish(FakeAdvertisement("det"))
    sim.run(until=sim.now + 2 * MINUTES)
    latencies = []
    overlay.edges[1].discovery.get_remote_advertisements(
        "repro:FakeAdvertisement", "Name", "det",
        callback=lambda advs, lat: latencies.append(lat),
    )
    sim.run(until=sim.now + 1 * MINUTES)
    return {
        "events": [(r.time, r.observer, r.kind, r.subject) for r in log.records()],
        "messages": network.stats.messages_sent,
        "bytes": network.stats.bytes_sent,
        "latencies": latencies,
        "fired": sim.events_fired,
        "views": [
            [p.short() for p in rdv.view.ordered_ids()]
            for rdv in overlay.rendezvous
        ],
    }


class TestDeterminism:
    def test_same_seed_same_everything(self):
        a = run_scenario(17)
        b = run_scenario(17)
        assert a == b

    def test_different_seed_different_trajectory(self):
        a = run_scenario(17)
        b = run_scenario(18)
        # peer IDs differ, so the whole trajectory differs
        assert a["views"] != b["views"]

    def test_latency_values_reproducible(self):
        a = run_scenario(21)
        b = run_scenario(21)
        assert a["latencies"] == b["latencies"]
        assert len(a["latencies"]) == 1
