"""Integration: every example script runs to completion.

The examples double as executable documentation; this keeps them from
rotting as the library evolves.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"
    lowered = out.lower()
    assert "traceback" not in lowered
    # every example prints evidence of protocol activity
    assert any(
        token in lowered
        for token in ("found", "discovered", "peerview", "got task", "ok")
    ), out[:400]
