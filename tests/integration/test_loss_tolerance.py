"""Integration: protocol behaviour under message loss.

The paper's testbed was loss-free; these tests verify the reproduction
degrades gracefully when it isn't — the periodic nature of every
protocol (probes, SRDI pushes, lease renewals) makes lost messages a
delay, not a failure.
"""

from repro.advertisement import FakeAdvertisement
from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.network import Network
from repro.sim import MINUTES, Simulator


def build(loss_rate, seed=19, r=8, e=2):
    sim = Simulator(seed=seed)
    network = Network(sim, loss_rate=loss_rate)
    overlay = build_overlay(
        sim, network, PlatformConfig(),
        OverlayDescription(
            rendezvous_count=r, edge_count=e,
            edge_attachment=[0, r // 2][:e],
        ),
    )
    overlay.start()
    return sim, network, overlay


class TestPeerviewUnderLoss:
    def test_converges_despite_5_percent_loss(self):
        sim, network, overlay = build(loss_rate=0.05)
        sim.run(until=20 * MINUTES)
        sizes = overlay.group.peerview_sizes()
        assert min(sizes) >= 6  # near-complete views of 7
        assert network.stats.messages_dropped > 0

    def test_leases_survive_loss(self):
        sim, network, overlay = build(loss_rate=0.05)
        sim.run(until=30 * MINUTES)
        assert overlay.group.connected_edge_count() == 2


class TestDiscoveryUnderLoss:
    def test_most_queries_succeed_with_retried_srdi(self):
        sim, network, overlay = build(loss_rate=0.03)
        sim.run(until=15 * MINUTES)
        publisher, searcher = overlay.edges
        publisher.discovery.publish(FakeAdvertisement("lossy"))
        sim.run(until=sim.now + 3 * MINUTES)

        outcomes = {"ok": 0, "fail": 0}

        def issue(remaining):
            searcher.cache.flush()
            searcher.discovery.get_remote_advertisements(
                "repro:FakeAdvertisement", "Name", "lossy",
                callback=lambda advs, lat: (
                    outcomes.__setitem__("ok", outcomes["ok"] + 1),
                    remaining > 1 and issue(remaining - 1),
                ),
                on_timeout=lambda: (
                    outcomes.__setitem__("fail", outcomes["fail"] + 1),
                    remaining > 1 and issue(remaining - 1),
                ),
                timeout=10.0,
            )

        issue(20)
        sim.run(until=sim.now + 20 * 11.0)
        total = outcomes["ok"] + outcomes["fail"]
        assert total == 20
        # individual queries may lose a hop, but most complete
        assert outcomes["ok"] >= 14, outcomes
