"""Property-based tests: ID intern-table round-trip and rank stability.

The intern table maps ``PeerID`` objects to dense ints so the hot
paths (peerview membership, SRDI indices, router tables) key on small
ints instead of hashing URN strings.  The mapping must be a lossless
round-trip — ``PeerID -> key -> PeerID`` returns the *first object
registered* for that identity — and must carry **no ordering meaning**:
peerview ranks come from the ID bytes alone, never from registration
order.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.advertisement.rdvadv import RdvAdvertisement
from repro.ids import NET_PEER_GROUP_ID, PeerID
from repro.ids.intern import IdInternTable
from repro.rendezvous.peerview import PeerView

id_values = st.lists(
    st.integers(0, 999), min_size=1, max_size=60, unique=True
)


def adv(n):
    return RdvAdvertisement(
        rdv_peer_id=PeerID.from_int(NET_PEER_GROUP_ID, n),
        group_id=NET_PEER_GROUP_ID,
        route_hint=f"tcp://h{n}:1",
    )


@given(id_values)
def test_intern_round_trip_identity(values):
    table = IdInternTable()
    firsts = [PeerID.from_int(NET_PEER_GROUP_ID, n) for n in values]
    keys = [table.intern(pid) for pid in firsts]

    # dense keys in first-seen order
    assert keys == list(range(len(firsts)))

    for pid, key in zip(firsts, keys):
        # PeerID -> int -> PeerID returns the exact registered object
        assert table.id_of(key) is pid
        # interning again (same object or an equal twin) is stable
        assert table.intern(pid) == key
        twin = PeerID.from_int(NET_PEER_GROUP_ID, values[key])
        assert twin == pid and twin is not pid
        assert table.intern(twin) == key
        # the twin did not displace the canonical object
        assert table.id_of(key) is pid
        assert table.lookup(pid) == key


@given(id_values, st.randoms(use_true_random=False))
def test_intern_keys_are_table_scoped(values, rng):
    """Two tables fed the same IDs in different orders assign keys
    independently; neither leaks into the other."""
    a, b = IdInternTable(), IdInternTable()
    ids = [PeerID.from_int(NET_PEER_GROUP_ID, n) for n in values]
    shuffled = list(ids)
    rng.shuffle(shuffled)
    keys_a = {pid: a.intern(pid) for pid in ids}
    keys_b = {pid: b.intern(pid) for pid in shuffled}
    for pid in ids:
        assert a.id_of(keys_a[pid]) is pid
        assert b.id_of(keys_b[pid]) is pid
        # re-interning in either table still yields that table's key,
        # even though the object may carry the other table's fast-path
        # cache from its most recent intern call
        assert a.intern(pid) == keys_a[pid]
        assert b.intern(pid) == keys_b[pid]


@given(id_values, st.randoms(use_true_random=False))
def test_ranks_independent_of_intern_order(values, rng):
    """Replica ranks (Table 1) depend only on ID bytes: a view whose
    intern table saw the members in a random order beforehand ranks
    identically to one interning on first contact."""
    local = values[0]
    members = values[1:]

    fresh = PeerView(adv(local))

    preloaded_table = IdInternTable()
    warm_order = [local] + members
    rng.shuffle(warm_order)
    for n in warm_order:
        preloaded_table.intern(PeerID.from_int(NET_PEER_GROUP_ID, n))
    preloaded = PeerView(adv(local), interner=preloaded_table)

    contact_order = list(members)
    rng.shuffle(contact_order)
    for i, n in enumerate(contact_order):
        fresh.upsert(adv(n), float(i))
        preloaded.upsert(adv(n), float(i))

    assert fresh.ordered_ids() == preloaded.ordered_ids()
    assert fresh.ordered_ids() == tuple(
        sorted(fresh.ordered_ids(), key=lambda pid: pid._value)
    )
    for n in values:
        pid = PeerID.from_int(NET_PEER_GROUP_ID, n)
        assert fresh.rank_of(pid) == preloaded.rank_of(pid)
