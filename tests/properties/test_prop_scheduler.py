"""Property-based tests: wheel-vs-heap scheduler equivalence.

The timer-wheel scheduler must be *observationally identical* to the
plain binary heap: same (time, seq) fire order, same clock trajectory,
same counters — byte for byte, for any interleaving of scheduling,
cancellation, handle reuse (``reschedule``) and mid-run control
changes (trace hooks and ``stop`` park the fast loop).  A generated
program of timer operations is interpreted on one simulator of each
flavour and the full observable logs are compared exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator

# Delays straddling every tier boundary: inside the active window,
# across wheel slots (0.5 s wide, 128 slots = 64 s span) and beyond
# the wheel horizon into the overflow heap.
_BOUNDARY_DELAYS = (
    0.0, 1e-9, 0.25, 0.4999999, 0.5, 0.5000001, 1.0, 7.3,
    63.999999, 64.0, 64.000001, 100.0, 127.75, 200.0, 500.0,
)

delay_values = st.one_of(
    st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
    st.sampled_from(_BOUNDARY_DELAYS),
)

# One top-level timer: (delay, kind, auxiliary delay, auxiliary int).
# ``kind`` selects what the timer does when it fires.
event_specs = st.tuples(
    delay_values,
    st.sampled_from(["plain", "spawn", "cancel", "resched", "hook", "stop"]),
    delay_values,
    st.integers(min_value=0, max_value=1_000_000),
)

programs = st.lists(event_specs, min_size=1, max_size=25)


def _interpret(events, scheduler):
    """Run ``events`` on a fresh simulator; return the observable log."""
    sim = Simulator(seed=3, scheduler=scheduler)
    log = []
    handles = []
    hook_on = [False]

    def hook(now, phase, handle):
        # registration alone re-routes ``run`` off the check-free fast
        # loop; logging the phase also checks hook delivery parity
        log.append(("hook", now, phase, handle.label))

    def fire(tag, kind, aux_delay, aux_int):
        log.append((tag, sim.now, kind))
        if kind == "spawn":
            handles.append(
                sim.schedule(
                    aux_delay, fire, f"{tag}c", "plain", 0.0, 0,
                    label=f"{tag}c",
                )
            )
        elif kind == "cancel" and handles:
            target = handles[aux_int % len(handles)]
            log.append(("cancel", tag, target.cancel()))
        elif kind == "resched":
            # re-arm this timer's own (just-fired) handle, the periodic
            # pattern; the re-armed shot is plain so it fires once more
            own = handles[int(tag)]
            handles[int(tag)] = sim.reschedule(
                own, aux_delay, fire, f"{tag}r", "plain", 0.0, 0
            )
        elif kind == "hook":
            if hook_on[0]:
                sim.remove_trace_hook(hook)
            else:
                sim.add_trace_hook(hook, phases=("fire", "done"))
            hook_on[0] = not hook_on[0]
        elif kind == "stop":
            sim.stop()

    for i, (delay, kind, aux_delay, aux_int) in enumerate(events):
        handles.append(
            sim.schedule(delay, fire, str(i), kind, aux_delay, aux_int,
                         label=str(i))
        )
    # ``stop`` events park the queue mid-run; keep draining until the
    # simulation is genuinely empty so post-stop behaviour is compared
    for _ in range(len(events) * 2 + 2):
        sim.run()
        if sim.pending_events == 0:
            break
    log.append(("end", sim.now, sim.events_fired, sim.pending_events))
    return log


@settings(max_examples=60, deadline=None)
@given(programs)
def test_wheel_and_heap_fire_identically(events):
    assert _interpret(events, "wheel") == _interpret(events, "heap")


@settings(max_examples=40, deadline=None)
@given(
    programs,
    st.lists(delay_values, min_size=1, max_size=6),
)
def test_sliced_runs_match_across_schedulers(events, cuts):
    """Deadline-sliced runs (the experiment-campaign pattern) must also
    agree: window refills happen at different moments under slicing."""

    def sliced(scheduler):
        sim = Simulator(seed=5, scheduler=scheduler)
        log = []

        def fire(tag):
            log.append((tag, sim.now))

        handles = [
            sim.schedule(delay, fire, i, label=str(i))
            for i, (delay, kind, aux_delay, aux_int) in enumerate(events)
        ]
        at = 0.0
        for i, cut in enumerate(cuts):
            at += cut
            sim.run(until=at)
            # cancel between slices: tombstones left resident in
            # whichever tier currently holds the entry
            handles[i % len(handles)].cancel()
        sim.run()
        log.append(("end", sim.now, sim.events_fired))
        return log

    assert sliced("wheel") == sliced("heap")
