"""Property-based tests: advertisement cache vs a reference model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.advertisement import AdvertisementCache, FakeAdvertisement

names = st.sampled_from([f"adv-{i}" for i in range(8)])

ops = st.lists(
    st.one_of(
        st.tuples(st.just("publish"), names, st.floats(1.0, 100.0)),
        st.tuples(st.just("remote"), names, st.floats(1.0, 100.0)),
        st.tuples(st.just("remove"), names),
        st.tuples(st.just("advance"), st.floats(0.0, 50.0)),
        st.tuples(st.just("purge"),),
    ),
    min_size=0,
    max_size=60,
)


@given(ops)
def test_cache_matches_reference_model(operations):
    cache = AdvertisementCache()
    model = {}  # name -> (expires_at, local)
    now = 0.0
    for op in operations:
        kind = op[0]
        if kind == "publish":
            _, name, lifetime = op
            cache.publish(FakeAdvertisement(name), now, lifetime=lifetime)
            model[name] = (now + lifetime, True)
        elif kind == "remote":
            _, name, expiration = op
            cache.store_remote(FakeAdvertisement(name), now, expiration)
            existing = model.get(name)
            if existing is None or not existing[1] or existing[0] <= now:
                model[name] = (now + expiration, False)
        elif kind == "remove":
            _, name = op
            removed = cache.remove(FakeAdvertisement(name))
            assert removed == (name in model)
            model.pop(name, None)
        elif kind == "advance":
            now += op[1]
        else:
            cache.purge_expired(now)
            model = {n: v for n, v in model.items() if v[0] > now}

        # live lookups agree with the model at every step
        for name in [f"adv-{i}" for i in range(8)]:
            entry = cache.get(FakeAdvertisement(name), now)
            alive_in_model = name in model and model[name][0] > now
            assert (entry is not None) == alive_in_model, (name, now)


@given(st.lists(names, min_size=0, max_size=20))
def test_search_finds_exactly_live_published_names(published):
    cache = AdvertisementCache()
    for name in published:
        cache.publish(FakeAdvertisement(name), now=0.0, lifetime=100.0)
    found = cache.search("repro:FakeAdvertisement", "Name", "adv-*", now=1.0)
    assert sorted(a.name for a in found) == sorted(set(published))
