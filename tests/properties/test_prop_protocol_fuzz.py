"""Fuzz: the peerview protocol never crashes on adversarial messages.

A rendezvous must survive arbitrary (well-formed) peerview traffic from
arbitrary senders: probes/updates/responses/referrals about peers it
has never heard of, referrals about itself, messages during and after
shutdown.  The protocol is best-effort; the invariant is "no exception,
view stays sorted and self-consistent".
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.advertisement.rdvadv import RdvAdvertisement
from repro.config import PlatformConfig
from repro.endpoint.router import EndpointRouter
from repro.endpoint.service import EndpointMessage, EndpointService
from repro.ids.jxtaid import NET_PEER_GROUP_ID, PeerID
from repro.network.latency import ConstantLatency
from repro.network.site import place_nodes
from repro.network.transport import Network
from repro.rendezvous.messages import (
    PeerViewProbe,
    PeerViewReferral,
    PeerViewResponse,
    PeerViewUpdate,
)
from repro.rendezvous.protocol import PEERVIEW_SERVICE_NAME, PeerViewProtocol
from repro.sim import Simulator

LOCAL_ID = 500


def _adv(n):
    return RdvAdvertisement(
        rdv_peer_id=PeerID.from_int(NET_PEER_GROUP_ID, n),
        group_id=NET_PEER_GROUP_ID,
        route_hint=f"tcp://fuzz-{n}:9701",
    )


messages = st.lists(
    st.one_of(
        st.tuples(st.just("probe"), st.integers(0, 40), st.booleans()),
        st.tuples(st.just("update"), st.integers(0, 40)),
        st.tuples(st.just("response"), st.integers(0, 40)),
        st.tuples(
            st.just("referral"),
            st.lists(st.integers(0, 40), min_size=0, max_size=4),
        ),
        # hearsay about the local peer itself
        st.tuples(st.just("referral_self"),),
    ),
    min_size=0,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(messages)
def test_peerview_protocol_survives_arbitrary_traffic(sequence):
    sim = Simulator(seed=1)
    network = Network(sim, latency=ConstantLatency(0.001))
    node = place_nodes(1)[0]
    local_adv = _adv(LOCAL_ID)
    endpoint = EndpointService(
        sim, network, local_adv.rdv_peer_id, node, "tcp://fuzz-local:9701"
    )
    EndpointRouter(endpoint)
    endpoint.attach()
    protocol = PeerViewProtocol(
        endpoint, PlatformConfig(), local_adv, "fuzz-group"
    )
    protocol.start()

    def deliver(body, sender_n):
        message = EndpointMessage(
            src_peer=PeerID.from_int(NET_PEER_GROUP_ID, sender_n),
            dst_peer=local_adv.rdv_peer_id,
            service_name=PEERVIEW_SERVICE_NAME,
            service_param="fuzz-group",
            body=body,
            origin_address=f"tcp://fuzz-{sender_n}:9701",
        )
        from repro.network.message import Envelope

        endpoint._on_envelope(
            Envelope(
                src=message.origin_address,
                dst=endpoint.transport_address,
                payload=message,
                size_bytes=message.size_bytes(),
                sent_at=sim.now,
            )
        )

    for item in sequence:
        kind = item[0]
        if kind == "probe":
            deliver(PeerViewProbe(_adv(item[1]), want_referral=item[2]), item[1])
        elif kind == "update":
            deliver(PeerViewUpdate(_adv(item[1])), item[1])
        elif kind == "response":
            deliver(PeerViewResponse(_adv(item[1])), item[1])
        elif kind == "referral":
            deliver(PeerViewReferral([_adv(n) for n in item[1]]), 7)
        else:
            deliver(PeerViewReferral([local_adv]), 7)
        sim.run(until=sim.now + 1.0)

        # invariants: sorted, self present, size consistent
        ordered = protocol.view.ordered_ids()
        assert list(ordered) == sorted(ordered)
        assert protocol.view.local_peer_id in protocol.view
        assert protocol.view.member_count() == protocol.view.size + 1

    protocol.stop()
    sim.run(until=sim.now + 60.0)  # drains without errors
