"""Property-based tests: the SRDI index vs a reference model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.discovery.srdi import SrdiIndex
from repro.ids import NET_PEER_GROUP_ID, PeerID

TUPLES = [("T", "Name", f"v{i}") for i in range(4)]
PUBLISHERS = [PeerID.from_int(NET_PEER_GROUP_ID, n) for n in range(4)]

ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("add"),
            st.integers(0, 3),  # tuple index
            st.integers(0, 3),  # publisher index
            st.floats(1.0, 50.0),  # expiration
        ),
        st.tuples(st.just("advance"), st.floats(0.0, 30.0)),
        st.tuples(st.just("remove_pub"), st.integers(0, 3)),
        st.tuples(st.just("purge"),),
        st.tuples(st.just("clear"),),
    ),
    min_size=0,
    max_size=60,
)


@given(ops)
def test_srdi_index_matches_reference_model(operations):
    index = SrdiIndex()
    model = {}  # (tuple idx, publisher idx) -> expires_at
    now = 0.0
    for op in operations:
        kind = op[0]
        if kind == "add":
            _, t, p, expiration = op
            index.add(
                TUPLES[t], PUBLISHERS[p], f"tcp://e{p}:1", now, expiration
            )
            model[(t, p)] = now + expiration
        elif kind == "advance":
            now += op[1]
        elif kind == "remove_pub":
            p = op[1]
            dropped = index.remove_publisher(PUBLISHERS[p])
            expected = sum(1 for (_, mp) in model if mp == p)
            assert dropped == expected
            model = {k: v for k, v in model.items() if k[1] != p}
        elif kind == "purge":
            index.purge_expired(now)
            model = {k: v for k, v in model.items() if v > now}
        else:
            index.clear()
            model = {}

        # live lookups agree with the model after every operation
        for t in range(4):
            live = {
                r.publisher for r in index.lookup(TUPLES[t], now)
            }
            expected_pubs = {
                PUBLISHERS[p]
                for (mt, p), exp in model.items()
                if mt == t and exp > now
            }
            assert live == expected_pubs, (t, now)
        # the stored count never under-counts the live records
        assert len(index) >= sum(1 for v in model.values() if v > now)
