"""Property-based tests: time-series reconstruction invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import EventLog
from repro.metrics.series import StepSeries, peerview_size_series

events = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        st.sampled_from(["peerview.add", "peerview.remove"]),
    ),
    min_size=0,
    max_size=60,
)


@given(events)
def test_series_final_value_equals_event_balance(evs):
    log = EventLog()
    # only record removes that keep the running size >= 0 (a PeerView
    # can never emit a remove without a prior add)
    size = 0
    kept = []
    for t, kind in sorted(evs):
        if kind == "peerview.remove" and size == 0:
            continue
        size += 1 if kind == "peerview.add" else -1
        kept.append((t, kind))
        log.record(t, "rdv-0", kind, "x")
    series = peerview_size_series(log, "rdv-0")
    assert series.final == size
    assert min(series.values) >= 0


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    ),
    st.floats(min_value=-5.0, max_value=110.0, allow_nan=False),
)
def test_value_at_returns_last_step_at_or_before(points, query_t):
    points = sorted(points, key=lambda p: p[0])
    series = StepSeries([p[0] for p in points], [p[1] for p in points])
    expected = 0.0
    for t, v in points:
        if t <= query_t:
            expected = v
    assert series.value_at(query_t) == expected
