"""Property-based tests: checkpointing is observationally invisible.

For *any* event boundary in a protocol run — any overlay size, seed,
scheduler implementation and pooling mode — snapshotting, restoring
and continuing must reproduce the never-checkpointed run exactly
(kernel fire digest, message counters, peerview contents).  And an
in-process fork is a genuinely independent universe: mutating the
clone never perturbs the original, identical continuations stay
identical, divergent ones diverge.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.advertisement import FakeAdvertisement
from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.network import Network
from repro.sim import MINUTES, Simulator
from repro.sim.tracing import KernelTraceRecorder
from repro.snapshot import fork_network, restore_network, snapshot_network

END = 10 * MINUTES


def _deploy(r, seed, scheduler, pooling):
    sim = Simulator(seed=seed, scheduler=scheduler)
    network = Network(sim, pooling=pooling)
    recorder = KernelTraceRecorder(sim)
    overlay = build_overlay(
        sim, network, PlatformConfig(),
        OverlayDescription(
            rendezvous_count=r, edge_count=1, edge_attachment=[0],
            topology="chain",
        ),
    )
    overlay.start()
    return network, overlay, recorder


def _finish(network, overlay, recorder):
    network.sim.run(until=END)
    return {
        "digest": recorder.digest(),
        "seq": network.sim._seq,
        "fired": network.sim.events_fired,
        "messages": network.stats.messages_sent,
        "bytes": network.stats.bytes_sent,
        "views": [
            [p.short() for p in rdv.view.ordered_ids()]
            for rdv in overlay.rendezvous
        ],
    }


scenario = st.tuples(
    st.integers(min_value=3, max_value=7),       # r
    st.integers(min_value=1, max_value=10_000),  # seed
    st.floats(min_value=0.01, max_value=0.99),   # boundary fraction
    st.sampled_from(["wheel", "heap"]),
    st.booleans(),                               # pooling
)


@settings(max_examples=12, deadline=None)
@given(scenario)
def test_restore_at_any_boundary_is_invisible(params):
    r, seed, frac, scheduler, pooling = params
    baseline = _finish(*_deploy(r, seed, scheduler, pooling))

    network, overlay, recorder = _deploy(r, seed, scheduler, pooling)
    network.sim.run(until=frac * END)  # an arbitrary event boundary
    blob = snapshot_network(
        network, extra={"overlay": overlay, "recorder": recorder}
    )
    del network, overlay, recorder
    net2, extra = restore_network(blob)
    resumed = _finish(net2, extra["overlay"], extra["recorder"])
    assert resumed == baseline


def _diverge(network, overlay, recorder, k):
    """A continuation whose event timing depends on ``k``."""
    sim = network.sim
    sim.schedule(
        1.0 + 0.125 * k,
        overlay.edges[0].discovery.publish,
        FakeAdvertisement("fork-divergence"),
        label="diverge",
    )
    return _finish(network, overlay, recorder)


@settings(max_examples=8, deadline=None)
@given(
    st.integers(min_value=1, max_value=10_000),
    st.floats(min_value=0.1, max_value=0.9),
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=0, max_value=20),
)
def test_forked_universes_are_independent(seed, frac, k1, k2):
    graphs = []
    for _ in range(3):
        network, overlay, recorder = _deploy(4, seed, "wheel", True)
        network.sim.run(until=frac * END)
        graphs.append((network, overlay, recorder))
    parent, twin, control = graphs

    clone, extra = fork_network(
        parent[0], extra={"overlay": parent[1], "recorder": parent[2]}
    )
    clone_result = _diverge(clone, extra["overlay"], extra["recorder"], k1)

    # 1. forking + mutating the clone never perturbs the parent: its
    #    continuation matches a graph that was never forked
    assert _finish(*parent) == _finish(*control)

    # 2. same divergence seed → identical universes; different seeds →
    #    observably different timelines
    twin_result = _diverge(*twin, k2)
    if k1 == k2:
        assert twin_result == clone_result
    else:
        assert twin_result["digest"] != clone_result["digest"]
