"""Property-based tests: Chord ring arithmetic and static wiring."""

import bisect

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.chord import (
    ChordRing,
    M,
    RING,
    in_half_open_interval,
    in_open_interval,
)
from repro.network import Network
from repro.network.site import place_nodes
from repro.sim import Simulator

ring_points = st.integers(min_value=0, max_value=RING - 1)


@given(ring_points, ring_points, ring_points)
def test_open_interval_partition(x, a, b):
    # for a != b, every x other than the endpoints is in exactly one of
    # (a, b) and (b, a)
    if a == b or x in (a, b):
        return
    assert in_open_interval(x, a, b) != in_open_interval(x, b, a)


@given(ring_points, ring_points)
def test_half_open_includes_exactly_upper_endpoint(a, b):
    if a == b:
        return
    assert in_half_open_interval(b, a, b)
    assert not in_half_open_interval(a, a, b)


@given(ring_points, ring_points, ring_points)
def test_half_open_equals_open_plus_endpoint(x, a, b):
    if a == b:
        return
    expected = in_open_interval(x, a, b) or x == b
    assert in_half_open_interval(x, a, b) == expected


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=24))
def test_static_ring_fingers_are_true_successors(n):
    sim = Simulator(seed=1)
    network = Network(sim)
    ring = ChordRing(sim, network, place_nodes(n), static_build=True)
    keys = [m.key for m in ring.members]
    for member in ring.members:
        for i, finger in enumerate(member.fingers):
            start = (member.key + 2**i) % RING
            index = bisect.bisect_left(keys, start) % n
            assert finger == (ring.members[index].address, keys[index])
    assert ring.is_correct()
