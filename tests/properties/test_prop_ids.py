"""Property-based tests: JXTA ID total order and URN codec."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ids import NET_PEER_GROUP_ID, PeerID

ints = st.integers(min_value=0, max_value=2**128 - 1)


@given(ints, ints)
def test_order_matches_integer_order(a, b):
    pa = PeerID.from_int(NET_PEER_GROUP_ID, a)
    pb = PeerID.from_int(NET_PEER_GROUP_ID, b)
    assert (pa < pb) == (a < b)
    assert (pa == pb) == (a == b)


@given(st.lists(ints, min_size=0, max_size=50))
def test_sorting_ids_sorts_their_integers(values):
    ids = [PeerID.from_int(NET_PEER_GROUP_ID, v) for v in values]
    sorted_ints = [
        int.from_bytes(p.unique_value, "big") for p in sorted(ids)
    ]
    assert sorted_ints == sorted(values)


@given(st.binary(min_size=16, max_size=16))
def test_urn_roundtrip(unique):
    pid = PeerID.from_parts(NET_PEER_GROUP_ID, unique)
    assert PeerID.from_urn(pid.urn()) == pid


@given(ints)
def test_hash_consistent_with_equality(n):
    a = PeerID.from_int(NET_PEER_GROUP_ID, n)
    b = PeerID.from_int(NET_PEER_GROUP_ID, n)
    assert a == b and hash(a) == hash(b)
