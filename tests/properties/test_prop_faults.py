"""Property-based tests hardening the fault/invariant layer.

The invariant checker is the oracle every fault scenario leans on, so
it gets its own adversary: hypothesis drives random peerview states,
random corruptions and random fault windows, asserting the checker
flags exactly the broken states and the window predicate matches its
interval semantics.
"""

from types import SimpleNamespace

from hypothesis import given
from hypothesis import strategies as st

from repro.advertisement.rdvadv import RdvAdvertisement
from repro.config import PlatformConfig
from repro.discovery.replica import ReplicaFunction
from repro.faults import InvariantChecker
from repro.faults.engine import _ActiveWindow
from repro.ids import NET_PEER_GROUP_ID, PeerID
from repro.rendezvous.lease import EdgeLease
from repro.rendezvous.peerview import PeerView
from repro.sim import Simulator

LOCAL = 500


def adv(n):
    return RdvAdvertisement(
        rdv_peer_id=PeerID.from_int(NET_PEER_GROUP_ID, n),
        group_id=NET_PEER_GROUP_ID,
        route_hint=f"tcp://h{n}:1",
    )


def fake_rendezvous(members):
    """A minimal stand-in exposing everything the checker touches."""
    view = PeerView(adv(LOCAL))
    for n in members:
        view.upsert(adv(n), 0.0)
    return SimpleNamespace(
        name="fake-rdv",
        running=True,
        view=view,
        config=PlatformConfig(),
        discovery=SimpleNamespace(replica_fn=ReplicaFunction()),
        lease_server=SimpleNamespace(_leases={}),
        peerview_protocol=SimpleNamespace(name="peerview:fake"),
    )


def checker_for(peer):
    return InvariantChecker(Simulator(seed=0), [peer])


members_sets = st.sets(
    st.integers(0, 999).filter(lambda n: n != LOCAL), min_size=0, max_size=50
)


@given(members_sets)
def test_clean_view_never_flagged(members):
    peer = fake_rendezvous(members)
    assert checker_for(peer).check_peer(peer) == []


@given(members_sets.filter(lambda s: len(s) >= 2), st.integers(0, 10_000))
def test_any_adjacent_swap_is_flagged(members, pick):
    peer = fake_rendezvous(members)
    ids = peer.view._order
    peer.view.invalidate_ordered_view()
    i = pick % (len(ids) - 1)
    ids[i], ids[i + 1] = ids[i + 1], ids[i]
    found = checker_for(peer).check_peer(peer)
    assert any(v.invariant == "peerview.total-order" for v in found)


@given(members_sets.filter(bool), st.integers(0, 10_000))
def test_any_duplicate_entry_is_flagged(members, pick):
    peer = fake_rendezvous(members)
    ids = peer.view._order
    peer.view.invalidate_ordered_view()
    ids.insert(pick % len(ids), ids[pick % len(ids)])
    found = checker_for(peer).check_peer(peer)
    invariants = {v.invariant for v in found}
    assert invariants & {"peerview.total-order", "peerview.consistency"}


@given(members_sets.filter(bool))
def test_ghost_entry_is_flagged(members):
    # an entry-table/order-book mismatch (entry dropped, id retained)
    peer = fake_rendezvous(members)
    victim = next(iter(peer.view._entries))
    del peer.view._entries[victim]
    found = checker_for(peer).check_peer(peer)
    assert any(v.invariant == "peerview.consistency" for v in found)


@given(st.floats(min_value=0.0, max_value=1e6), st.floats(0.0, 5000.0))
def test_lease_lifetime_boundary(now, slack):
    peer = fake_rendezvous({1, 2})
    grant = peer.config.lease_duration
    peer.lease_server._leases = {
        "edge": EdgeLease(
            edge_peer=PeerID.from_int(NET_PEER_GROUP_ID, 7),
            edge_address="tcp://e:1",
            expires_at=now + grant + slack,
        )
    }
    found = checker_for(peer).check_peer(peer, now=now)
    lease_violations = [v for v in found if v.invariant == "lease.lifetime"]
    if slack > 1e-6:
        assert lease_violations
    elif slack == 0.0:
        assert not lease_violations


@given(
    st.floats(0.0, 100.0),
    st.floats(0.1, 100.0),
    st.floats(-50.0, 250.0),
    st.booleans(),
)
def test_window_active_matches_interval_semantics(start, length, probe, sited):
    window = _ActiveWindow(
        start, start + length, rate=0.5,
        sites=("rennes",) if sited else (),
    )
    inside = start <= probe < start + length
    assert window.active(probe, "rennes", "sophia") == inside
    assert window.active(probe, "lyon", "rennes") == inside
    # neither endpoint in the site filter -> never active when sited
    assert window.active(probe, "lyon", "nancy") == (inside and not sited)
