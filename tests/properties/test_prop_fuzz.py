"""Property tests for the fuzz layer (genome codec, mutation,
shrinker, corpus merge) plus the cold-vs-warm bootstrap identity.

Genomes are generated the way the engine generates them — via the
seeded ``random_case``/``mutate`` pipeline — so every property runs
over the exact distribution the fuzzer explores."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz import (
    DEFAULT_BOUNDS,
    SEED_CASES,
    CorpusEntry,
    FuzzCase,
    case_key,
    crossover,
    from_dict,
    from_json,
    merge_entries,
    mutate,
    random_case,
    shrink_case,
    to_dict,
    to_json,
    validate_case,
)
from repro.fuzz.corpus import entry_to_dict


def _case_from_seed(n: int, mutations: int = 0) -> FuzzCase:
    rng = random.Random(n)
    case = random_case(rng, DEFAULT_BOUNDS)
    for _ in range(mutations):
        case = mutate(case, rng, DEFAULT_BOUNDS)
    return case


@given(st.integers(0, 10**9), st.integers(0, 4))
@settings(max_examples=80, deadline=None)
def test_round_trip_is_byte_identical(n, mutations):
    case = _case_from_seed(n, mutations)
    encoded = to_json(case)
    decoded = from_json(encoded)
    assert decoded == case
    assert to_json(decoded) == encoded  # byte identity, not just equality
    assert from_dict(to_dict(case)) == case
    assert case_key(decoded) == case_key(case)


@given(st.integers(0, 10**9))
@settings(max_examples=80, deadline=None)
def test_mutation_always_yields_valid_bounded_genome(n):
    rng = random.Random(n)
    case = rng.choice(SEED_CASES + (random_case(rng, DEFAULT_BOUNDS),))
    for _ in range(6):
        case = mutate(case, rng, DEFAULT_BOUNDS)
        validate_case(case, DEFAULT_BOUNDS)  # raises on violation
        assert all(a["at"] <= case.duration for a in case.actions)


@given(st.integers(0, 10**9))
@settings(max_examples=60, deadline=None)
def test_crossover_always_yields_valid_bounded_genome(n):
    rng = random.Random(n)
    a = random_case(rng, DEFAULT_BOUNDS)
    b = random_case(rng, DEFAULT_BOUNDS)
    child = crossover(a, b, rng, DEFAULT_BOUNDS)
    validate_case(child, DEFAULT_BOUNDS)


@given(st.integers(0, 10**9))
@settings(max_examples=40, deadline=None)
def test_shrinker_output_still_fails_the_same_predicate(n):
    rng = random.Random(n)
    case = _case_from_seed(n)
    if not case.actions:
        return
    # synthetic oracle: "fails" iff a specific surviving action kind
    # is present — the same signature-predicate shape the engine uses
    wanted = rng.choice(case.actions)["kind"]

    def still_fails(candidate):
        return any(a["kind"] == wanted for a in candidate.actions)

    result = shrink_case(case, still_fails, max_probes=80)
    assert still_fails(result.case)
    validate_case(result.case, DEFAULT_BOUNDS)
    assert len(result.case.actions) <= len(case.actions)


@given(st.integers(0, 10**9), st.data())
@settings(max_examples=40, deadline=None)
def test_corpus_merge_is_order_independent(n, data):
    rng = random.Random(n)
    entries = []
    for i in range(rng.randint(2, 8)):
        case = _case_from_seed(n + i)
        if rng.random() < 0.5:
            entries.append(
                CorpusEntry(case=case, new_keys=(f"metric:k{i % 3}",))
            )
        else:
            entries.append(
                CorpusEntry(
                    case=case,
                    kind="failure",
                    signature=f"invariants:sig{i % 2}",
                )
            )
    split = rng.randint(0, len(entries))
    merged_ab = merge_entries(entries[:split], entries[split:])
    merged_ba = merge_entries(entries[split:], entries[:split])
    shuffled = list(entries)
    rng.shuffle(shuffled)
    merged_shuffled = merge_entries(shuffled)
    as_dicts = lambda ms: [entry_to_dict(e) for e in ms]  # noqa: E731
    assert as_dicts(merged_ab) == as_dicts(merged_ba)
    assert as_dicts(merged_ab) == as_dicts(merged_shuffled)
    # idempotent: merging the merge changes nothing
    assert as_dicts(merge_entries(merged_ab)) == as_dicts(merged_ab)


def test_cold_and_warm_bootstrap_runs_are_byte_identical(tmp_path):
    """A case run with its bootstrap restored from the checkpoint
    cache must produce the same kernel digest and coverage as a cold
    run — the contract that lets shrink probes warm-start."""
    from repro.fuzz.runner import run_case
    from repro.snapshot import CheckpointStore

    case = SEED_CASES[1]
    cold = run_case(case)
    store = CheckpointStore(tmp_path / "cache")
    miss = run_case(case, store=store)  # builds the checkpoint
    hit = run_case(case, store=store)  # restores it
    assert store.counters()["hits"] >= 1
    assert miss.digest == cold.digest == hit.digest
    assert miss.coverage == cold.coverage == hit.coverage
