"""Property-based tests: object pooling is observationally invisible.

The steady-state free lists (kernel handle pool, network envelope and
message-shell pools, ``schedule_recycled``) exist purely to recycle
memory — they must never change what a run *does*.  Two guarantees are
checked here:

* a generated network workload (sends to live and dead addresses,
  mid-flight detaches, interleaved time advancement) produces an
  identical delivery/drop/kernel-trace log with pooling on and off;
* a generated timer program produces an identical fire log whether the
  deliver-style timers go through plain ``schedule`` or through the
  fused ``schedule_recycled`` + inline-release cycle the transport
  uses (both consume one ``seq`` per arm, so traces match byte for
  byte).

``REPRO_POOL_DEBUG=1`` integrity checking (double release, re-arm of a
pool-resident handle) is covered in
``tests/unit/test_message_pool.py``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.latency import ConstantLatency
from repro.network.site import place_nodes
from repro.network.transport import Network
from repro.sim import Simulator

_ADDRS = ("p0", "p1", "p2", "p3")

# One workload step: (kind, src index, dst index, size, delay).
net_steps = st.tuples(
    st.sampled_from(["send", "send_on_drop", "detach", "attach", "run"]),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=1, max_value=4096),
    st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
)

net_programs = st.lists(net_steps, min_size=1, max_size=30)


def _run_network_program(steps, pooling):
    """Interpret ``steps`` on a fresh simulator/network; return the
    full observable log (deliveries, drops, kernel trace)."""
    sim = Simulator(seed=7)
    net = Network(
        sim, latency=ConstantLatency(0.01), sw_overhead=0.0, pooling=pooling
    )
    nodes = place_nodes(4)
    log = []

    def trace(now, phase, handle):
        log.append(("trace", now, phase, handle.label))

    sim.add_trace_hook(trace)

    def handler_for(addr):
        def handler(envelope):
            log.append(
                (
                    "recv",
                    addr,
                    sim.now,
                    envelope.src,
                    envelope.dst,
                    envelope.size_bytes,
                    envelope.payload,
                )
            )

        return handler

    attached = {}
    for i, addr in enumerate(_ADDRS):
        net.attach(addr, nodes[i], handler_for(addr))
        attached[addr] = True

    def on_drop(envelope):
        log.append(("drop", sim.now, envelope.src, envelope.dst))

    counter = 0
    for kind, src_i, dst_i, size, delay in steps:
        src, dst = _ADDRS[src_i], _ADDRS[dst_i]
        if kind == "send" and attached[src]:
            counter += 1
            net.send(src, dst, f"m{counter}", size_bytes=size)
        elif kind == "send_on_drop" and attached[src]:
            counter += 1
            net.send(src, dst, f"m{counter}", size_bytes=size, on_drop=on_drop)
        elif kind == "detach":
            net.detach(dst)
            attached[dst] = False
        elif kind == "attach" and not attached[dst]:
            net.attach(dst, nodes[dst_i], handler_for(dst))
            attached[dst] = True
        elif kind == "run":
            sim.run(until=sim.now + delay)
    sim.run()
    log.append(("stats", net.stats.snapshot()))
    return log


@settings(max_examples=60, deadline=None)
@given(net_programs)
def test_network_pooling_is_observationally_invisible(steps):
    pooled = _run_network_program(steps, pooling=True)
    unpooled = _run_network_program(steps, pooling=False)
    assert pooled == unpooled


# One timer step: (delay, cancel the previous timer?, reschedule?).
timer_steps = st.tuples(
    st.floats(min_value=0.0, max_value=90.0, allow_nan=False),
    st.booleans(),
    st.booleans(),
)

timer_programs = st.lists(timer_steps, min_size=1, max_size=25)


def _run_timer_program(steps, recycled):
    """Arm a timer per step — via ``schedule_recycled`` + inline
    release (the transport's cycle) or plain ``schedule`` — with
    interleaved cancels and re-arms; return the fire log."""
    sim = Simulator(seed=11)
    log = []
    live = []

    def fired_recycled(a, b, handle):
        log.append((sim.now, a, b))
        if handle._state is False:
            sim.release_handle(handle)

    def fired_plain(a, b):
        log.append((sim.now, a, b))

    for i, (delay, do_cancel, do_resched) in enumerate(steps):
        if do_cancel and live:
            live.pop().cancel()
        if recycled:
            handle = sim.schedule_recycled(
                delay, fired_recycled, f"t{i}", i, "prop.timer"
            )
        else:
            handle = sim.schedule(
                delay, fired_plain, f"t{i}", i, label="prop.timer"
            )
        live.append(handle)
        if do_resched:
            # an extra plain timer on both sides keeps seq consumption
            # aligned while mixing tiers
            live.append(
                sim.schedule(delay / 2, log.append, (i, "aux"), label="aux")
            )
    sim.run()
    return log


@settings(max_examples=60, deadline=None)
@given(timer_programs)
def test_schedule_recycled_matches_plain_schedule(steps):
    recycled = _run_timer_program(steps, recycled=True)
    plain = _run_timer_program(steps, recycled=False)
    assert recycled == plain
