"""Property-based tests: simulation kernel invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Simulator

delays = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=0,
    max_size=60,
)


@given(delays)
def test_events_fire_in_nondecreasing_time_order(ds):
    sim = Simulator()
    fired = []
    for d in ds:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(ds)


@given(delays)
def test_equal_times_fire_in_schedule_order(ds):
    sim = Simulator()
    fired = []
    for i, d in enumerate(ds):
        sim.schedule(d, fired.append, (d, i))
    sim.run()
    # stable sort by time must preserve submission order on ties
    assert fired == sorted(fired, key=lambda pair: pair[0])


@given(
    delays,
    st.lists(
        st.floats(min_value=0.0, max_value=2e6, allow_nan=False),
        min_size=1,
        max_size=5,
    ),
)
def test_sliced_runs_equal_single_run(ds, cuts):
    def build():
        sim = Simulator()
        out = []
        for i, d in enumerate(ds):
            sim.schedule(d, out.append, (d, i))
        return sim, out

    s1, out1 = build()
    s1.run()

    s2, out2 = build()
    for cut in sorted(cuts):
        s2.run(until=cut)
    s2.run()
    assert out1 == out2


@given(delays, st.integers(min_value=0, max_value=59))
def test_cancellation_removes_exactly_one_event(ds, index):
    if not ds:
        return
    index = index % len(ds)
    sim = Simulator()
    fired = []
    handles = [sim.schedule(d, fired.append, i) for i, d in enumerate(ds)]
    handles[index].cancel()
    sim.run()
    assert len(fired) == len(ds) - 1
    assert index not in fired


@given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
def test_clock_never_runs_backwards(d):
    sim = Simulator()
    seen = []
    sim.schedule(d, lambda: seen.append(sim.now))
    sim.schedule(d / 2, lambda: seen.append(sim.now))
    sim.run()
    assert seen == sorted(seen)
