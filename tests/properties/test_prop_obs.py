"""Property-based tests: observability histogram/registry invariants.

The campaign aggregator merges per-worker metric snapshots, so merge
must behave like multiset union of the underlying observations:
commutative, associative, count/total-conserving, and quantile bounds
must always bracket the true value by construction.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import DEFAULT_LATENCY_EDGES_S, Histogram, MetricsRegistry

values = st.floats(
    min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False
)
samples = st.lists(values, min_size=0, max_size=80)

# a small, shared edge vector keeps overflow interesting
EDGES = (0.5, 2.0, 8.0, 32.0)


def _hist(data, edges=EDGES):
    h = Histogram(edges=edges)
    for v in data:
        h.observe(v)
    return h


@given(samples)
def test_observations_conserved(data):
    h = _hist(data)
    assert h.count == len(data)
    assert sum(h.counts) + h.overflow == len(data)
    assert h.total == pytest.approx(sum(data), rel=1e-9, abs=1e-9)
    if data:
        assert h.min == min(data)
        assert h.max == max(data)


@given(samples, samples)
def test_merge_commutative(a, b):
    ab = Histogram.merged([_hist(a), _hist(b)])
    ba = Histogram.merged([_hist(b), _hist(a)])
    assert ab.snapshot() == ba.snapshot()


def _approx_sum(snap):
    """Split a snapshot into its exact part and the float total —
    merge reassociates additions, so ``sum`` is only approximately
    order-independent."""
    rest = {k: v for k, v in snap.items() if k != "sum"}
    return rest, snap["sum"]


@given(samples, samples, samples)
def test_merge_associative_and_equals_pooled(a, b, c):
    left = _hist(a)
    left.merge(_hist(b))
    left.merge(_hist(c))
    right = _hist(b)
    right.merge(_hist(c))
    first = _hist(a)
    first.merge(right)
    pooled = _hist(a + b + c)
    exact_l, sum_l = _approx_sum(left.snapshot())
    exact_f, sum_f = _approx_sum(first.snapshot())
    exact_p, sum_p = _approx_sum(pooled.snapshot())
    assert exact_l == exact_f == exact_p
    assert sum_l == pytest.approx(sum_f, rel=1e-9, abs=1e-9)
    assert sum_l == pytest.approx(sum_p, rel=1e-9, abs=1e-9)


@given(samples, st.floats(min_value=0.0, max_value=1.0))
def test_quantile_bounds_bracket_true_quantile(data, q):
    h = _hist(data)
    if not data:
        with pytest.raises(ValueError):
            h.quantile_bounds(q)
        return
    lo, hi = h.quantile_bounds(q)
    assert lo <= hi
    assert h.min <= lo and hi <= h.max
    # the true order statistic at rank ceil(q*n) lies in [lo, hi]
    import math

    rank = max(1, math.ceil(q * len(data)))
    true_value = sorted(data)[rank - 1]
    assert lo <= true_value <= hi


@given(samples)
def test_quantile_bounds_within_bucket_edges(data):
    h = _hist(data)
    if not data:
        return
    for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
        lo, hi = h.quantile_bounds(q)
        # bounds come from the bucket-edge lattice, clamped by
        # observed extrema
        lattice = {0.0, h.min, h.max, *EDGES}
        assert lo in lattice
        assert hi in lattice


@given(samples)
def test_default_edges_cover_latency_range(data):
    h = Histogram()
    assert h.edges == DEFAULT_LATENCY_EDGES_S
    for v in data:
        h.observe(v)
    assert h.count == len(data)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["peerview", "lease", "resolver"]),
            st.sampled_from(["a", "b"]),
            st.integers(min_value=1, max_value=5),
        ),
        max_size=40,
    )
)
def test_registry_merge_conserves_counters(events):
    # split the event stream across two "workers", merge, compare with
    # a single registry that saw everything
    r1, r2, whole = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
    for i, (proto, name, n) in enumerate(events):
        (r1 if i % 2 == 0 else r2).count(proto, name, n)
        whole.count(proto, name, n)
    merged = MetricsRegistry.merged([r1, r2])
    assert merged.snapshot() == whole.snapshot()


@given(samples, samples)
def test_registry_merge_conserves_histograms(a, b):
    r1, r2 = MetricsRegistry(), MetricsRegistry()
    for v in a:
        r1.observe("endpoint", "delay", v)
    for v in b:
        r2.observe("endpoint", "delay", v)
    merged = MetricsRegistry.merged([r1, r2])
    if not a and not b:
        assert "endpoint.delay" not in merged.snapshot()["histograms"]
        return
    snap = merged.snapshot()["histograms"]["endpoint.delay"]
    assert snap["count"] == len(a) + len(b)
    assert snap["sum"] == pytest.approx(sum(a) + sum(b), rel=1e-9, abs=1e-9)
