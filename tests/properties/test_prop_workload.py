"""Property-based tests: workload subsystem invariants.

The guarantees the load experiment and its record/replay oracle rest
on, pinned over randomized inputs:

* arrival schedules are a pure function of (stream seed, parameters) —
  seed determinism;
* scaling an arrival process's rate up never *loses* arrivals for a
  fixed stream — the time-change construction's monotonicity, which
  makes "offered load" a well-ordered campaign axis;
* SLO snapshot merging is commutative and associative — cross-seed
  and cross-shard aggregation cannot depend on worker scheduling;
* histogram quantile estimates bracket the true order statistic.
"""

import json
import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.histogram import Histogram
from repro.workload import SloTracker, make_arrivals

seeds = st.integers(min_value=0, max_value=2**32 - 1)

arrival_specs = st.one_of(
    st.builds(
        lambda r: {"kind": "constant", "rate": r},
        st.floats(min_value=0.1, max_value=20.0, allow_nan=False),
    ),
    st.builds(
        lambda r: {"kind": "poisson", "rate": r},
        st.floats(min_value=0.1, max_value=20.0, allow_nan=False),
    ),
    st.builds(
        lambda base, burst, d0, d1: {
            "kind": "mmpp", "base_rate": base, "burst_rate": burst,
            "mean_base_dwell": d0, "mean_burst_dwell": d1,
        },
        st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
        st.floats(min_value=5.0, max_value=50.0, allow_nan=False),
        st.floats(min_value=1.0, max_value=30.0, allow_nan=False),
        st.floats(min_value=1.0, max_value=10.0, allow_nan=False),
    ),
    st.builds(
        lambda base, amp, period, phase: {
            "kind": "diurnal", "base_rate": base, "amplitude": amp,
            "period": period, "phase": phase,
        },
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=10.0, max_value=500.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    ),
)


@given(arrival_specs, seeds)
@settings(max_examples=60, deadline=None)
def test_arrivals_are_seed_deterministic(spec, seed):
    proc = make_arrivals(spec)
    a = list(proc.iter_times(random.Random(seed), 5.0, 45.0))
    b = list(make_arrivals(spec).iter_times(random.Random(seed), 5.0, 45.0))
    assert a == b
    assert all(t2 >= t1 for t1, t2 in zip(a, a[1:]))
    assert all(5.0 < t <= 45.0 for t in a)


@given(
    arrival_specs,
    seeds,
    st.floats(min_value=1.0, max_value=4.0, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_rate_scaling_is_monotone(spec, seed, factor):
    """For a fixed stream, scaling the rate up never reduces the
    arrival count in the window (time-change construction)."""
    base = make_arrivals(spec)
    scaled = make_arrivals(spec, rate_scale=factor)
    n_base = sum(1 for _ in base.iter_times(random.Random(seed), 0.0, 30.0))
    n_scaled = sum(1 for _ in scaled.iter_times(random.Random(seed), 0.0, 30.0))
    assert n_scaled >= n_base
    assert scaled.mean_rate() >= base.mean_rate()


# ------------------------------------------------------------------- SLO
ops = st.sampled_from(["query", "publish", "lookup"])
events = st.lists(
    st.tuples(
        st.sampled_from(["ok", "timeout", "failure", "retry"]),
        ops,
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
    ),
    max_size=60,
)


def _tracker(recordings):
    slo = SloTracker()
    for outcome, op, latency in recordings:
        if outcome == "ok":
            slo.record_success("w", op, latency)
        elif outcome == "timeout":
            slo.record_timeout("w", op)
        elif outcome == "failure":
            slo.record_failure("w", op)
        else:
            slo.record_retry("w", op)
    return slo


def _snap(slo):
    return json.dumps(slo.snapshot(), sort_keys=True)


def _approx_snap_equal(a, b):
    """Snapshot equality: exact for everything except float sums, which
    may differ in the last ULP when merge order regroups additions
    (IEEE addition is commutative but not associative)."""
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _approx_snap_equal(a[k], b[k]) for k in a
        )
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(
            _approx_snap_equal(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, float) or isinstance(b, float):
        return math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-12)
    return a == b


@given(events, events)
@settings(max_examples=60, deadline=None)
def test_slo_merge_commutative(ev_a, ev_b):
    ab = _tracker(ev_a)
    ab.merge(_tracker(ev_b))
    ba = _tracker(ev_b)
    ba.merge(_tracker(ev_a))
    assert _snap(ab) == _snap(ba)


@given(events, events, events)
@settings(max_examples=60, deadline=None)
def test_slo_merge_associative(ev_a, ev_b, ev_c):
    """(a ⊕ b) ⊕ c = a ⊕ (b ⊕ c): counts/quantiles exactly, float sums
    up to regrouped-addition roundoff."""
    left = _tracker(ev_a)
    left.merge(_tracker(ev_b))
    left.merge(_tracker(ev_c))

    bc = _tracker(ev_b)
    bc.merge(_tracker(ev_c))
    right = _tracker(ev_a)
    right.merge(bc)
    assert _approx_snap_equal(left.snapshot(), right.snapshot())

    # merged() folds left-to-right, so it matches `left` byte-exactly
    assert _snap(SloTracker.merged(
        [_tracker(ev_a), _tracker(ev_b), _tracker(ev_c)]
    )) == _snap(left)


@given(events)
@settings(max_examples=60, deadline=None)
def test_slo_merge_identity(ev):
    slo = _tracker(ev)
    before = _snap(slo)
    slo.merge(SloTracker())
    assert _snap(slo) == before


# -------------------------------------------------- quantile bracketing
latency_samples = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=100,
)
quantiles = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@given(latency_samples, quantiles)
@settings(max_examples=100, deadline=None)
def test_quantile_estimate_brackets_true_order_statistic(data, q):
    """p50/p95/p99 (conservative upper bounds) and the full bracket
    must contain the exact q-th order statistic of the raw samples."""
    h = Histogram(edges=(0.5, 2.0, 8.0, 32.0))
    for v in data:
        h.observe(v)
    rank = max(1, math.ceil(q * len(data)))
    true_value = sorted(data)[rank - 1]
    lo, hi = h.quantile_bounds(q)
    assert lo <= true_value <= hi
    assert h.quantile(q) >= true_value


@given(latency_samples)
@settings(max_examples=60, deadline=None)
def test_pxx_accessors_match_quantile(data):
    h = Histogram(edges=(0.5, 2.0, 8.0, 32.0))
    for v in data:
        h.observe(v)
    assert h.p50 == h.quantile(0.50)
    assert h.p95 == h.quantile(0.95)
    assert h.p99 == h.quantile(0.99)
    assert h.p50 <= h.p95 <= h.p99
