"""Property-based tests: ReplicaPeer function invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.discovery.replica import ReplicaFunction, SHA1_MAX_HASH

texts = st.text(min_size=0, max_size=40)
tuples_ = st.tuples(texts, texts, texts)
counts = st.integers(min_value=1, max_value=1000)


@given(tuples_, counts)
def test_rank_always_within_view(index_tuple, count):
    fn = ReplicaFunction()
    assert 0 <= fn.rank(index_tuple, count) < count


@given(tuples_, counts, counts)
def test_rank_scales_monotonically_with_member_count(index_tuple, c1, c2):
    # the same hash maps to the same *quantile*: a bigger view can only
    # move the rank up, proportionally
    fn = ReplicaFunction()
    lo, hi = sorted((c1, c2))
    assert fn.rank(index_tuple, lo) <= fn.rank(index_tuple, hi)


@given(tuples_)
def test_identical_views_agree_on_replica(index_tuple):
    # the LC-DHT's core soundness property: peers with equal peerviews
    # compute equal replica ranks (Property (2) => O(1) lookup)
    a, b = ReplicaFunction(), ReplicaFunction()
    for count in (1, 6, 50, 580):
        assert a.rank(index_tuple, count) == b.rank(index_tuple, count)


@given(st.integers(0, SHA1_MAX_HASH - 1), counts)
def test_rank_formula_matches_paper(hash_value, count):
    fn = ReplicaFunction(hash_fn=lambda key: hash_value)
    expected = hash_value * count // SHA1_MAX_HASH
    assert fn.rank(("t", "a", "v"), count) == expected


@given(tuples_, counts)
def test_rank_stable_under_peerview_growth(index_tuple, count):
    # one peer joining moves any tuple's replica rank by at most one
    # position: growth never teleports responsibility across the view
    fn = ReplicaFunction()
    before = fn.rank(index_tuple, count)
    after = fn.rank(index_tuple, count + 1)
    assert after - before in (0, 1)


@given(tuples_, st.integers(min_value=2, max_value=1000))
def test_rank_stable_under_peerview_shrink(index_tuple, count):
    # symmetric: one peer leaving moves the rank down by at most one,
    # and the result stays a valid index into the smaller view
    fn = ReplicaFunction()
    before = fn.rank(index_tuple, count)
    after = fn.rank(index_tuple, count - 1)
    assert before - after in (0, 1)
    assert 0 <= after < count - 1
