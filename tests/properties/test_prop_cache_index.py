"""Property: indexed cache queries match the historical linear scan.

``AdvertisementCache.search`` used to scan every entry with
``fnmatchcase``.  It now resolves through type/attribute/value hash
indexes (with a glob fallback).  The oracle below is the pre-index
implementation, verbatim, run against the same entry dict — every
query the discovery API can express must return the *identical* list
(same advertisements, same order, same ``limit`` truncation),
including ``*``/``?`` wildcards and queries at exact expiry instants.
"""

from fnmatch import fnmatchcase

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.advertisement import AdvertisementCache, FakeAdvertisement
from repro.advertisement.rdvadv import RdvAdvertisement
from repro.ids.jxtaid import NET_PEER_GROUP_ID, PeerID

FAKE = FakeAdvertisement.ADV_TYPE
RDV = RdvAdvertisement.ADV_TYPE


def linear_scan_oracle(cache, adv_type, attribute, value, now, limit=None):
    """The pre-index ``search`` implementation, character for character."""
    out = []
    for entry in cache._entries.values():
        if entry.expired(now):
            continue
        adv = entry.adv
        if adv_type is not None and adv.ADV_TYPE != adv_type:
            continue
        if attribute is not None:
            matched = False
            for t, attr, val in adv.index_tuples():
                if attr == attribute and (
                    value is None or fnmatchcase(val, value)
                ):
                    matched = True
                    break
            if not matched:
                continue
        out.append(adv)
        if limit is not None and len(out) >= limit:
            break
    return out


def _rdv(n, name):
    return RdvAdvertisement(
        rdv_peer_id=PeerID.from_int(NET_PEER_GROUP_ID, n),
        group_id=NET_PEER_GROUP_ID,
        name=name,
    )


names = st.sampled_from([f"adv-{i}" for i in range(6)])
rdv_ns = st.integers(0, 4)
#: overlaps with the fake names so cross-type attribute queries bite
rdv_names = st.sampled_from(["", "adv-1", "adv-3", "rdv-x"])
durations = st.floats(1.0, 50.0)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("pub_fake"), names, durations),
        st.tuples(st.just("remote_fake"), names, durations),
        st.tuples(st.just("pub_rdv"), rdv_ns, rdv_names, durations),
        st.tuples(st.just("remove_fake"), names),
        st.tuples(st.just("advance"), st.floats(0.0, 20.0)),
        st.tuples(st.just("purge"),),
    ),
    min_size=0,
    max_size=40,
)

adv_types = st.sampled_from([None, FAKE, RDV, "jxta:NoSuchType"])
attributes = st.sampled_from([None, "Name", "RdvPeerID", "Payload", "Bogus"])
values = st.sampled_from(
    [None, "adv-1", "adv-5", "rdv-x", "adv-*", "*", "adv-?", "no-such",
     "[a]dv-1", "a*1"]
)
limits = st.sampled_from([None, 1, 2, 5])
queries = st.lists(
    st.tuples(adv_types, attributes, values, limits), min_size=1, max_size=6
)


@settings(max_examples=150, deadline=None)
@given(operations, queries)
def test_indexed_search_matches_linear_oracle(ops, query_specs):
    cache = AdvertisementCache()
    now = 0.0
    expiry_instants = []
    for op in ops:
        kind = op[0]
        if kind == "pub_fake":
            cache.publish(FakeAdvertisement(op[1]), now, lifetime=op[2])
            expiry_instants.append(now + op[2])
        elif kind == "remote_fake":
            cache.store_remote(FakeAdvertisement(op[1]), now, expiration=op[2])
            expiry_instants.append(now + op[2])
        elif kind == "pub_rdv":
            cache.publish(_rdv(op[1], op[2]), now, lifetime=op[3])
            expiry_instants.append(now + op[3])
        elif kind == "remove_fake":
            cache.remove(FakeAdvertisement(op[1]))
        elif kind == "advance":
            now += op[1]
        else:
            cache.purge_expired(now)

    # probe at the current time, exactly at expiry instants (>= means
    # expired), and just before/after one
    probe_nows = [now] + expiry_instants[:3]
    if expiry_instants:
        probe_nows += [expiry_instants[0] - 1e-9, expiry_instants[0] + 1e-9]

    for adv_type, attribute, value, limit in query_specs:
        for qnow in probe_nows:
            got = cache.search(adv_type, attribute, value, qnow, limit=limit)
            want = linear_scan_oracle(
                cache, adv_type, attribute, value, qnow, limit=limit
            )
            assert got == want, (
                f"query ({adv_type!r}, {attribute!r}, {value!r}, "
                f"limit={limit}) at t={qnow}"
            )


@settings(max_examples=60, deadline=None)
@given(operations)
def test_incremental_purge_matches_full_scan(ops):
    """Heap-based ``purge_expired`` drops exactly the entries the old
    full scan dropped, and the ``purged`` counter agrees."""
    cache = AdvertisementCache()
    now = 0.0
    for op in ops:
        kind = op[0]
        if kind == "pub_fake":
            cache.publish(FakeAdvertisement(op[1]), now, lifetime=op[2])
        elif kind == "remote_fake":
            cache.store_remote(FakeAdvertisement(op[1]), now, expiration=op[2])
        elif kind == "pub_rdv":
            cache.publish(_rdv(op[1], op[2]), now, lifetime=op[3])
        elif kind == "remove_fake":
            cache.remove(FakeAdvertisement(op[1]))
        elif kind == "advance":
            now += op[1]
        else:
            cache.purge_expired(now)

    expected_dead = sum(1 for e in cache._entries.values() if e.expired(now))
    before = cache.purged
    dropped = cache.purge_expired(now)
    assert dropped == expected_dead
    assert cache.purged == before + dropped
    assert all(not e.expired(now) for e in cache._entries.values())
