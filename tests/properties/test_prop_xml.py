"""Property-based tests: advertisement XML codec round-trips."""

from hypothesis import given
from hypothesis import strategies as st

from repro.advertisement import (
    FakeAdvertisement,
    PeerAdvertisement,
    RouteAdvertisement,
    parse_advertisement,
)
from repro.ids import NET_PEER_GROUP_ID, PeerID

# XML 1.0 cannot carry most control characters; JXTA documents are
# printable text, so the strategy sticks to that domain
xml_text = st.text(
    alphabet=st.characters(
        min_codepoint=0x20, max_codepoint=0xD7FF, blacklist_characters="\x7f"
    ),
    min_size=0,
    max_size=80,
)
nonempty_xml_text = xml_text.filter(lambda s: s.strip() != "")

peer_ids = st.integers(min_value=0, max_value=2**128 - 1).map(
    lambda n: PeerID.from_int(NET_PEER_GROUP_ID, n)
)


@given(nonempty_xml_text, xml_text)
def test_fake_advertisement_roundtrip(name, payload):
    adv = FakeAdvertisement(name, payload)
    assert parse_advertisement(adv.to_xml()) == adv


@given(peer_ids, nonempty_xml_text, xml_text)
def test_peer_advertisement_roundtrip(pid, name, desc):
    adv = PeerAdvertisement(pid, NET_PEER_GROUP_ID, name, desc)
    parsed = parse_advertisement(adv.to_xml())
    assert parsed == adv
    assert parsed.peer_id == pid


@given(
    peer_ids,
    st.lists(
        st.text(
            alphabet=st.characters(min_codepoint=0x21, max_codepoint=0x7E),
            min_size=1,
            max_size=30,
        ),
        min_size=1,
        max_size=5,
    ),
)
def test_route_advertisement_roundtrip(pid, hops):
    adv = RouteAdvertisement(pid, hops)
    parsed = parse_advertisement(adv.to_xml())
    assert parsed.hops == hops


@given(nonempty_xml_text, xml_text)
def test_size_bytes_matches_serialization(name, payload):
    adv = FakeAdvertisement(name, payload)
    assert adv.size_bytes() == len(adv.to_xml().encode("utf-8"))


@given(nonempty_xml_text)
def test_index_tuples_stable_across_roundtrip(name):
    adv = FakeAdvertisement(name)
    parsed = parse_advertisement(adv.to_xml())
    assert parsed.index_tuples() == adv.index_tuples()
