"""Property-based tests: range specs, endpoint addresses, walk helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.advertisement.rdvadv import RdvAdvertisement
from repro.discovery.rangequery import (
    is_range_query,
    parse_range_spec,
    range_spec,
    tuple_in_range,
)
from repro.discovery.walker import WALK_DOWN, WALK_UP, walk_next_target
from repro.endpoint.address import EndpointAddress
from repro.ids import NET_PEER_GROUP_ID, PeerID
from repro.rendezvous.peerview import PeerView

finite = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)


class TestRangeSpecProperties:
    @given(finite, finite)
    def test_roundtrip_for_valid_ranges(self, a, b):
        lo, hi = sorted((a, b))
        parsed = parse_range_spec(range_spec(lo, hi))
        assert parsed is not None
        assert parsed[0] == lo and parsed[1] == hi

    @given(finite, finite, finite)
    def test_membership_consistent_with_bounds(self, a, b, x):
        lo, hi = sorted((a, b))
        t = ("T", "A", repr(x))
        assert tuple_in_range(t, "T", "A", lo, hi) == (lo <= x <= hi)

    @given(st.text(max_size=30).filter(lambda s: ".." not in s))
    def test_plain_values_are_never_ranges(self, value):
        assert not is_range_query(value)


hostnames = st.text(
    alphabet=st.characters(min_codepoint=0x61, max_codepoint=0x7A),
    min_size=1,
    max_size=20,
)


class TestEndpointAddressProperties:
    @given(hostnames, hostnames, hostnames)
    def test_parse_str_roundtrip(self, host, service, param):
        addr = EndpointAddress("tcp", host, service, param)
        assert EndpointAddress.parse(str(addr)) == addr

    @given(hostnames)
    def test_transport_part_strips_services(self, host):
        addr = EndpointAddress.parse(f"tcp://{host}/svc/p")
        assert addr.transport_part == f"tcp://{host}"


def _adv(n):
    return RdvAdvertisement(
        rdv_peer_id=PeerID.from_int(NET_PEER_GROUP_ID, n),
        group_id=NET_PEER_GROUP_ID,
        route_hint=f"tcp://h{n}:1",
    )


class TestWalkProperties:
    @given(
        st.sets(st.integers(0, 500), min_size=1, max_size=40),
        st.integers(501, 600),
    )
    def test_walk_visits_every_member_exactly_once(self, members, local):
        """With identical views, the two walk legs together cover every
        other member exactly once — the O(r) bound of §3.3."""
        everyone = sorted(members | {local})
        views = {}
        for me in everyone:
            view = PeerView(_adv(me))
            for other in everyone:
                if other != me:
                    view.upsert(_adv(other), 0.0)
            views[me] = view

        visited = []
        for direction in (WALK_UP, WALK_DOWN):
            current = local
            while True:
                nxt = walk_next_target(views[current], direction)
                if nxt is None:
                    break
                n = int.from_bytes(nxt.unique_value, "big")
                visited.append(n)
                current = n
        assert sorted(visited) == sorted(members - {local})
