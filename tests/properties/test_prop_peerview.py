"""Property-based tests: peerview ordering and expiry invariants.

A model-based test drives a PeerView with random upsert/remove/expire
operations and checks it against a plain-dict reference model.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.advertisement.rdvadv import RdvAdvertisement
from repro.ids import NET_PEER_GROUP_ID, PeerID
from repro.rendezvous.peerview import PeerView

LOCAL = 500


def adv(n):
    return RdvAdvertisement(
        rdv_peer_id=PeerID.from_int(NET_PEER_GROUP_ID, n),
        group_id=NET_PEER_GROUP_ID,
        route_hint=f"tcp://h{n}:1",
    )


ops = st.lists(
    st.one_of(
        st.tuples(st.just("upsert"), st.integers(0, 999)),
        st.tuples(st.just("remove"), st.integers(0, 999)),
        st.tuples(st.just("expire"), st.floats(1.0, 100.0)),
    ),
    min_size=0,
    max_size=80,
)


@given(ops)
def test_peerview_matches_reference_model(operations):
    view = PeerView(adv(LOCAL))
    model = {}  # int id -> last_refreshed
    now = 0.0
    pve = 50.0
    for op in operations:
        now += 1.0
        if op[0] == "upsert":
            n = op[1]
            view.upsert(adv(n), now)
            if n != LOCAL:
                model[n] = now
        elif op[0] == "remove":
            n = op[1]
            removed = view.remove(
                PeerID.from_int(NET_PEER_GROUP_ID, n), now
            )
            assert removed == (n in model)
            model.pop(n, None)
        else:
            now += op[1]
            view.expire(now, pve)
            model = {
                n: t for n, t in model.items() if now - t <= pve
            }

        # invariants after every operation
        expected_ids = sorted(model.keys() | {LOCAL})
        actual_ids = [
            int.from_bytes(p.unique_value, "big") for p in view.ordered_ids()
        ]
        assert actual_ids == expected_ids
        assert view.size == len(model)
        assert view.member_count() == len(model) + 1


@given(st.sets(st.integers(0, 999), min_size=0, max_size=60))
def test_neighbors_match_sorted_order(members):
    view = PeerView(adv(LOCAL))
    for n in members:
        view.upsert(adv(n), 0.0)
    all_ids = sorted(set(members) | {LOCAL})
    index = all_ids.index(LOCAL)

    upper = view.upper_neighbor()
    lower = view.lower_neighbor()
    if index + 1 < len(all_ids):
        assert int.from_bytes(upper.unique_value, "big") == all_ids[index + 1]
    else:
        assert upper is None
    if index > 0:
        assert int.from_bytes(lower.unique_value, "big") == all_ids[index - 1]
    else:
        assert lower is None


@given(
    st.sets(st.integers(0, 999), min_size=1, max_size=60),
    st.integers(0, 59),
)
def test_rank_and_id_at_are_inverse(members, k):
    view = PeerView(adv(LOCAL))
    for n in members:
        view.upsert(adv(n), 0.0)
    count = view.member_count()
    rank = k % count
    assert view.rank_of(view.id_at(rank)) == rank


@given(
    st.lists(st.integers(0, 999), min_size=0, max_size=40, unique=True).flatmap(
        lambda ids: st.permutations(ids).map(lambda perm: (ids, list(perm)))
    )
)
def test_any_insertion_order_yields_same_total_order(ids_and_perm):
    # merge convergence: the total order a peerview settles on depends
    # only on the member *set*, never on arrival order, and upserting
    # duplicates never creates duplicate entries
    ids, perm = ids_and_perm
    reference = PeerView(adv(LOCAL))
    for n in sorted(ids):
        reference.upsert(adv(n), 0.0)
    shuffled = PeerView(adv(LOCAL))
    for n in perm:
        shuffled.upsert(adv(n), 0.0)
    for n in perm[: len(perm) // 2]:  # re-deliveries refresh, not add
        shuffled.upsert(adv(n), 1.0)
    assert shuffled.ordered_ids() == reference.ordered_ids()
    ordered = shuffled.ordered_ids()
    assert all(a < b for a, b in zip(ordered, ordered[1:]))
    assert len(set(ordered)) == len(ordered)


@given(st.sets(st.integers(0, 999), min_size=0, max_size=40), st.integers(0, 2**32))
def test_referrals_never_include_self_or_prober(members, seed):
    import random

    view = PeerView(adv(LOCAL))
    for n in members:
        view.upsert(adv(n), 0.0)
    members_list = sorted(members - {LOCAL})
    prober = PeerID.from_int(
        NET_PEER_GROUP_ID, members_list[0] if members_list else 7
    )
    picks = view.random_referrals(random.Random(seed), 3, exclude=(prober,))
    for entry in picks:
        assert entry.peer_id != view.local_peer_id
        assert entry.peer_id != prober
    assert len({e.peer_id for e in picks}) == len(picks)
