"""Unit tests for topologies, descriptions and the overlay builder."""

import pytest

from repro.config import PlatformConfig
from repro.deploy import (
    OverlayDescription,
    build_overlay,
    chain_topology,
    star_topology,
    tree_topology,
)
from repro.deploy.topologies import make_topology
from repro.network import Network
from repro.sim import Simulator


class TestTopologies:
    def test_chain(self):
        assert chain_topology(4) == [[], [0], [1], [2]]

    def test_tree_fanout_2(self):
        assert tree_topology(7) == [[], [0], [0], [1], [1], [2], [2]]

    def test_tree_fanout_3(self):
        assert tree_topology(5, fanout=3) == [[], [0], [0], [0], [1]]

    def test_star(self):
        assert star_topology(4) == [[], [0], [0], [0]]

    def test_singleton(self):
        for build in (chain_topology, tree_topology, star_topology):
            assert build(1) == [[]]

    def test_invalid_sizes(self):
        for build in (chain_topology, tree_topology, star_topology):
            with pytest.raises(ValueError):
                build(0)
        with pytest.raises(ValueError):
            tree_topology(3, fanout=0)

    def test_make_topology_dispatch(self):
        assert make_topology("chain", 3) == chain_topology(3)
        assert make_topology("tree", 7, fanout=2) == tree_topology(7)
        with pytest.raises(ValueError):
            make_topology("ring", 3)


class TestDescription:
    def test_default_attachment_round_robin(self):
        d = OverlayDescription(rendezvous_count=3, edge_count=5)
        assert d.attachment() == [0, 1, 2, 0, 1]

    def test_explicit_attachment(self):
        d = OverlayDescription(
            rendezvous_count=5, edge_count=4, edge_attachment=[0, 0, 1, 4]
        )
        assert d.attachment() == [0, 0, 1, 4]

    def test_paper_config_b(self):
        # 50 edges over 5 rendezvous (configuration B of §4.2)
        d = OverlayDescription(
            rendezvous_count=150,
            edge_count=50,
            edge_attachment=[i % 5 for i in range(50)],
        )
        attachment = d.attachment()
        assert len(set(attachment)) == 5
        assert len(attachment) == 50

    def test_attachment_length_mismatch(self):
        with pytest.raises(ValueError):
            OverlayDescription(
                rendezvous_count=2, edge_count=3, edge_attachment=[0, 1]
            )

    def test_attachment_out_of_range(self):
        with pytest.raises(ValueError):
            OverlayDescription(
                rendezvous_count=2, edge_count=1, edge_attachment=[2]
            )

    def test_bad_counts(self):
        with pytest.raises(ValueError):
            OverlayDescription(rendezvous_count=0)
        with pytest.raises(ValueError):
            OverlayDescription(rendezvous_count=1, edge_count=-1)


class TestBuilder:
    def _build(self, description):
        sim = Simulator(seed=1)
        net = Network(sim)
        return build_overlay(sim, net, PlatformConfig(), description)

    def test_counts(self):
        overlay = self._build(
            OverlayDescription(rendezvous_count=5, edge_count=3)
        )
        assert overlay.group.r == 5
        assert overlay.group.e == 3

    def test_chain_seed_lists(self):
        overlay = self._build(OverlayDescription(rendezvous_count=3))
        assert overlay.rendezvous[0].config.seeds == []
        assert overlay.rendezvous[1].config.seeds == [overlay.rendezvous[0].address]
        assert overlay.rendezvous[2].config.seeds == [overlay.rendezvous[1].address]

    def test_edges_seeded_to_attached_rdv(self):
        overlay = self._build(
            OverlayDescription(
                rendezvous_count=2, edge_count=2, edge_attachment=[1, 1]
            )
        )
        for edge in overlay.edges:
            assert edge.config.seeds == [overlay.rendezvous[1].address]

    def test_peers_spread_across_all_nine_sites(self):
        overlay = self._build(OverlayDescription(rendezvous_count=18))
        sites = {r.node.site.name for r in overlay.rendezvous}
        assert len(sites) == 9

    def test_site_subset(self):
        overlay = self._build(
            OverlayDescription(rendezvous_count=4, sites=["rennes", "orsay"])
        )
        sites = {r.node.site.name for r in overlay.rendezvous}
        assert sites == {"rennes", "orsay"}

    def test_unique_addresses(self):
        overlay = self._build(
            OverlayDescription(rendezvous_count=10, edge_count=10)
        )
        addresses = [p.address for p in overlay.group.all_peers]
        assert len(set(addresses)) == len(addresses)

    def test_start_stop(self):
        overlay = self._build(OverlayDescription(rendezvous_count=2, edge_count=1))
        overlay.start()
        assert all(p.running for p in overlay.group.all_peers)
        overlay.stop()
        assert not any(p.running for p in overlay.group.all_peers)

    def test_edge_transports_plumbed(self):
        overlay = self._build(
            OverlayDescription(
                rendezvous_count=2, edge_count=2,
                edge_transports=["tcp", "http"],
            )
        )
        assert overlay.edges[0].transport == "tcp"
        assert overlay.edges[1].transport == "http"
        assert overlay.edges[1].relay_client is not None

    def test_edge_transports_validation(self):
        with pytest.raises(ValueError):
            OverlayDescription(
                rendezvous_count=1, edge_count=2, edge_transports=["tcp"]
            )
        with pytest.raises(ValueError):
            OverlayDescription(
                rendezvous_count=1, edge_count=1, edge_transports=["smtp"]
            )

    def test_summary(self):
        overlay = self._build(OverlayDescription(rendezvous_count=3, edge_count=1))
        overlay.start()
        overlay.group.sim.run(until=600.0)
        summary = overlay.summary()
        assert summary["r"] == 3
        assert summary["e"] == 1
        assert summary["connected_edges"] == 1
        assert summary["messages_sent"] > 0
