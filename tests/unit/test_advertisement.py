"""Unit tests for advertisement types and the XML codec."""

import random

import pytest

from repro.advertisement import (
    FakeAdvertisement,
    PeerAdvertisement,
    PipeAdvertisement,
    RdvAdvertisement,
    RouteAdvertisement,
    UnknownAdvertisementType,
    parse_advertisement,
)
from repro.advertisement.pipeadv import PIPE_TYPE_PROPAGATE
from repro.ids import IDFactory, NET_PEER_GROUP_ID


@pytest.fixture
def factory():
    return IDFactory(random.Random(7))


class TestPeerAdvertisement:
    def test_roundtrip(self, factory):
        adv = PeerAdvertisement(
            factory.new_peer_id(), NET_PEER_GROUP_ID, "Test", desc="hello"
        )
        parsed = parse_advertisement(adv.to_xml())
        assert parsed == adv
        assert isinstance(parsed, PeerAdvertisement)

    def test_index_tuples_include_name(self, factory):
        adv = PeerAdvertisement(factory.new_peer_id(), NET_PEER_GROUP_ID, "Test")
        tuples = adv.index_tuples()
        assert ("jxta:PA", "Name", "Test") in tuples
        assert any(attr == "PID" for _, attr, _ in tuples)

    def test_paper_example_tuple(self, factory):
        # §3.3: type Peer + attribute Name + value Test
        adv = PeerAdvertisement(factory.new_peer_id(), NET_PEER_GROUP_ID, "Test")
        assert ("jxta:PA", "Name", "Test") in adv.index_tuples()

    def test_unique_key_is_per_peer(self, factory):
        pid = factory.new_peer_id()
        a = PeerAdvertisement(pid, NET_PEER_GROUP_ID, "name-1")
        b = PeerAdvertisement(pid, NET_PEER_GROUP_ID, "name-2")
        assert a.unique_key() == b.unique_key()

    def test_size_bytes_positive_and_realistic(self, factory):
        adv = PeerAdvertisement(factory.new_peer_id(), NET_PEER_GROUP_ID, "Test")
        assert 100 < adv.size_bytes() < 4096


class TestRdvAdvertisement:
    def test_roundtrip(self, factory):
        adv = RdvAdvertisement(
            factory.new_peer_id(),
            NET_PEER_GROUP_ID,
            name="rdv-1",
            route_hint="tcp://rennes-0:9701",
        )
        parsed = parse_advertisement(adv.to_xml())
        assert parsed == adv
        assert parsed.route_hint == "tcp://rennes-0:9701"

    def test_unique_key_per_peer_and_group(self, factory):
        pid = factory.new_peer_id()
        a = RdvAdvertisement(pid, NET_PEER_GROUP_ID, name="x")
        b = RdvAdvertisement(pid, NET_PEER_GROUP_ID, name="y")
        assert a.unique_key() == b.unique_key()


class TestRouteAdvertisement:
    def test_roundtrip_multi_hop(self, factory):
        adv = RouteAdvertisement(
            factory.new_peer_id(), ["tcp://a:1", "tcp://b:2"]
        )
        parsed = parse_advertisement(adv.to_xml())
        assert parsed.hops == ["tcp://a:1", "tcp://b:2"]
        assert parsed.first_hop == "tcp://a:1"
        assert parsed.last_hop == "tcp://b:2"

    def test_empty_route_rejected(self, factory):
        with pytest.raises(ValueError):
            RouteAdvertisement(factory.new_peer_id(), [])


class TestPipeAdvertisement:
    def test_roundtrip(self, factory):
        adv = PipeAdvertisement(
            factory.new_pipe_id(), "juxmem-data", PIPE_TYPE_PROPAGATE
        )
        parsed = parse_advertisement(adv.to_xml())
        assert parsed == adv

    def test_unknown_pipe_type_rejected(self, factory):
        with pytest.raises(ValueError):
            PipeAdvertisement(factory.new_pipe_id(), "x", "JxtaBogus")


class TestFakeAdvertisement:
    def test_roundtrip(self):
        adv = FakeAdvertisement("fake-17", payload="x" * 100)
        assert parse_advertisement(adv.to_xml()) == adv

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            FakeAdvertisement("")

    def test_payload_inflates_size(self):
        small = FakeAdvertisement("n")
        big = FakeAdvertisement("n", payload="y" * 1000)
        assert big.size_bytes() > small.size_bytes() + 900


class TestCodec:
    def test_malformed_xml_rejected(self):
        with pytest.raises(ValueError):
            parse_advertisement("<unclosed>")

    def test_missing_type_attribute_rejected(self):
        with pytest.raises(ValueError):
            parse_advertisement("<doc><Name>x</Name></doc>")

    def test_unknown_type_rejected(self):
        with pytest.raises(UnknownAdvertisementType):
            parse_advertisement('<doc type="jxta:Nope"><a>b</a></doc>')

    def test_xml_declaration_present(self, factory):
        adv = PeerAdvertisement(factory.new_peer_id(), NET_PEER_GROUP_ID, "T")
        assert adv.to_xml().startswith('<?xml version="1.0"?>')

    def test_eq_and_hash_consistent(self, factory):
        pid = factory.new_peer_id()
        a = PeerAdvertisement(pid, NET_PEER_GROUP_ID, "T")
        b = PeerAdvertisement(pid, NET_PEER_GROUP_ID, "T")
        assert a == b and hash(a) == hash(b)
