"""fig4_right's noiser refactor is behaviour-preserving.

PR 8 replaced the experiment's inline nested publish loop with
``noiser_catalog`` + ``publish_catalog`` from :mod:`repro.workload`.
These tests keep the *legacy loop itself* as the oracle: the old code
lives here verbatim, both paths run against recording stubs, and the
resulting publish sequences must match byte for byte — same names,
same payloads, same expirations, same per-edge order.
"""

from repro.advertisement.testadv import FakeAdvertisement
from repro.experiments.fig4_right import run_point
from repro.sim import HOURS
from repro.workload import noiser_catalog, publish_catalog


class RecordingEdge:
    """Stub edge capturing discovery.publish calls in order."""

    def __init__(self):
        self.calls = []
        self.discovery = self

    def publish(self, adv, lifetime=None, expiration=None):
        self.calls.append((adv.name, adv.payload, lifetime, expiration))


def legacy_noise_loop(noiser_edges, fakes_per_noiser):
    """The pre-refactor fig4_right configuration-B publish loop,
    verbatim (the equivalence oracle)."""
    for i, noiser in enumerate(noiser_edges):
        for j in range(fakes_per_noiser):
            noiser.discovery.publish(
                FakeAdvertisement(f"fake-{i}-{j}", payload="x" * 64),
                expiration=12 * HOURS,
            )


def test_catalog_path_matches_legacy_loop_exactly():
    for noisers, fakes in ((1, 1), (3, 5), (10, 7)):
        legacy = [RecordingEdge() for _ in range(noisers)]
        legacy_noise_loop(legacy, fakes)

        new = [RecordingEdge() for _ in range(noisers)]
        published = publish_catalog(
            new, noiser_catalog(noisers, fakes), expiration=12 * HOURS
        )

        assert published == noisers * fakes
        assert [e.calls for e in new] == [e.calls for e in legacy]


def test_advertisement_documents_are_identical():
    cat = noiser_catalog(2, 3)
    for i in range(2):
        for j in range(3):
            legacy_adv = FakeAdvertisement(f"fake-{i}-{j}", payload="x" * 64)
            new_adv = cat.adv_named(f"fake-{i}-{j}")
            assert new_adv.to_xml() == legacy_adv.to_xml()
            assert new_adv.unique_key() == legacy_adv.unique_key()


def test_fig4_point_unchanged_by_refactor():
    """Same seed → identical measurement through the real experiment
    path (overlay, SRDI, queries), with noisers active."""
    kwargs = dict(
        r=4, with_noise=True, queries=5, seed=3,
        warmup=240.0, noisers=3, fakes_per_noiser=4,
    )
    a = run_point(**kwargs)
    b = run_point(**kwargs)
    assert a.mean_ms == b.mean_ms
    assert a.success == b.success
    assert [(s.latency, s.found) for s in a.samples] == [
        (s.latency, s.found) for s in b.samples
    ]
