"""Unit tests for latency models."""

import random

import pytest

from repro.network.latency import (
    ConstantLatency,
    Grid5000Latency,
    UniformLatency,
)
from repro.network.site import site_by_name

RENNES = site_by_name("rennes")
SOPHIA = site_by_name("sophia")
ORSAY = site_by_name("orsay")


class TestConstantLatency:
    def test_returns_constant(self):
        m = ConstantLatency(0.005)
        assert m.delay(RENNES, SOPHIA, random.Random(0)) == 0.005

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)


class TestUniformLatency:
    def test_within_bounds(self):
        m = UniformLatency(0.001, 0.002)
        rng = random.Random(0)
        for _ in range(100):
            d = m.delay(RENNES, SOPHIA, rng)
            assert 0.001 <= d < 0.002

    def test_degenerate_interval(self):
        m = UniformLatency(0.001, 0.001)
        assert m.delay(RENNES, RENNES, random.Random(0)) == 0.001

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            UniformLatency(0.002, 0.001)
        with pytest.raises(ValueError):
            UniformLatency(-0.001, 0.002)


class TestGrid5000Latency:
    def test_intra_site_is_lan_scale(self):
        m = Grid5000Latency(jitter=0.0)
        d = m.delay(RENNES, RENNES, random.Random(0))
        assert 10e-6 < d < 500e-6

    def test_inter_site_is_wan_scale(self):
        m = Grid5000Latency(jitter=0.0)
        d = m.delay(RENNES, SOPHIA, random.Random(0))
        # Grid'5000 publishes RTTs of ~4-20 ms between sites; one-way 2-10 ms
        assert 2e-3 < d < 12e-3

    def test_base_delay_symmetric(self):
        m = Grid5000Latency()
        assert m.base_delay(RENNES, SOPHIA) == m.base_delay(SOPHIA, RENNES)

    def test_farther_site_pair_is_slower(self):
        m = Grid5000Latency()
        assert m.base_delay(RENNES, SOPHIA) > m.base_delay(RENNES, ORSAY)

    def test_jitter_bounds(self):
        m = Grid5000Latency(jitter=0.1)
        base = m.base_delay(RENNES, SOPHIA)
        rng = random.Random(1)
        for _ in range(200):
            d = m.delay(RENNES, SOPHIA, rng)
            assert base * 0.9 <= d <= base * 1.1

    def test_cache_consistency(self):
        m = Grid5000Latency()
        first = m.base_delay(RENNES, SOPHIA)
        assert m.base_delay(RENNES, SOPHIA) == first

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError):
            Grid5000Latency(jitter=1.0)
        with pytest.raises(ValueError):
            Grid5000Latency(jitter=-0.1)

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            Grid5000Latency(intra_site=-1.0)
