"""Unit tests for experiment-module logic (small runs + pure helpers)."""

import pytest

from repro.experiments import (
    fig3_left,
    fig3_right,
    fig4_left,
    fig4_right,
    table1,
)
from repro.metrics.series import StepSeries
from repro.sim import MINUTES


class TestFig3LeftSeries:
    def _series(self, times, values, r=10, topology="chain"):
        return fig3_left.Fig3LeftSeries(
            r=r, topology=topology,
            series=StepSeries(times, values),
            final_sizes=[int(values[-1])] * r,
        )

    def test_reached_max(self):
        s = self._series([0.0, 60.0], [0.0, 9.0])
        assert s.reached_max
        s2 = self._series([0.0, 60.0], [0.0, 8.0])
        assert not s2.reached_max

    def test_peak_and_time(self):
        s = self._series([0.0, 60.0, 120.0], [0.0, 9.0, 5.0])
        assert s.peak == 9.0
        assert s.peak_time_minutes == pytest.approx(1.0)

    def test_plateau_uses_last_quarter(self):
        s = self._series([0.0, 30.0, 90.0], [0.0, 9.0, 4.0])
        assert s.plateau(120.0) == pytest.approx(4.0)

    def test_label(self):
        assert self._series([0.0], [0.0], r=45).label == "45-chain"

    def test_small_run_end_to_end(self):
        results = fig3_left.run(
            configs=((6, "chain"),), duration=8 * MINUTES, seed=2
        )
        assert len(results) == 1
        assert results[0].reached_max
        text = fig3_left.render(results, 8 * MINUTES)
        assert "6-chain" in text
        assert "Summary" in text


class TestFig3Right:
    def test_numbering_assigns_in_first_seen_order(self):
        result = fig3_right.run(r=6, duration=10 * MINUTES, seed=2)
        numbers = [n for _, n in result.add_points]
        # first occurrence of each number is in increasing order
        seen = []
        for n in numbers:
            if n not in seen:
                seen.append(n)
        assert seen == sorted(seen)
        assert result.distinct_discovered <= result.max_possible

    def test_no_removals_in_short_run(self):
        result = fig3_right.run(r=6, duration=10 * MINUTES, seed=2)
        # PVE_EXPIRATION is 20 min: nothing can expire in 10
        assert result.remove_points == []
        assert result.first_remove_time == float("inf")

    def test_render_contains_phases(self):
        result = fig3_right.run(r=6, duration=10 * MINUTES, seed=2)
        text = fig3_right.render(result)
        assert "add events" in text
        assert "PVE_EXPIRATION" in text


class TestFig4LeftResult:
    def _result(self, tuned_values):
        times = [float(i * 60) for i in range(len(tuned_values))]
        return fig4_left.Fig4LeftResult(
            r=50,
            duration=times[-1],
            default_series=StepSeries([0.0, 600.0, 1800.0], [0.0, 49.0, 40.0]),
            tuned_series=StepSeries(times, tuned_values),
            tuned_expiration=5400.0,
        )

    def test_t1_first_time_at_max(self):
        result = self._result([0.0, 20.0, 49.0, 49.0])
        assert result.t1_minutes() == pytest.approx(2.0)

    def test_t1_none_when_never_reached(self):
        result = self._result([0.0, 20.0, 30.0, 40.0])
        assert result.t1_minutes() is None
        assert not result.tuned_holds_max()

    def test_default_decays(self):
        result = self._result([0.0, 49.0, 49.0, 49.0])
        assert result.default_decays()


class TestFig4RightPayloadDefaults:
    def test_paper_workload_constants(self):
        # §4.2: 50 noisers, f = 100 fakes each, on 5 rendezvous
        assert fig4_right.NOISER_COUNT == 50
        assert fig4_right.FAKES_PER_NOISER == 100
        assert fig4_right.NOISER_RDV_SPREAD == 5
        assert fig4_right.NOISER_COUNT * fig4_right.FAKES_PER_NOISER == 5000

    def test_render_lists_all_r(self):
        points = [
            fig4_right.Fig4RightPoint(
                r=r, configuration=c, mean_ms=10.0, success=1.0,
                samples=[], total_walk_steps=0,
            )
            for r in (4, 8)
            for c in ("A", "B")
        ]
        text = fig4_right.render(points)
        assert "4" in text and "8" in text


class TestTable1Constants:
    def test_paper_ids(self):
        assert table1.PAPER_RDV_IDS == (6, 20, 36, 50, 88, 180)
        assert table1.EXAMPLE_HASH == 116
        assert table1.EXAMPLE_MAX_HASH == 200
