"""Unit tests for the resolver service."""

import pytest

from repro.resolver import (
    QueryHandler,
    ResolverQuery,
    ResolverService,
)
from tests.unit.test_endpoint import build_peers


class EchoHandler(QueryHandler):
    """Responds to every query with 'echo:<payload>'."""

    def __init__(self):
        self.queries = []
        self.responses = []
        self.srdi = []

    def process_query(self, query):
        self.queries.append(query)
        return f"echo:{query.payload}"

    def process_response(self, response):
        self.responses.append(response)

    def process_srdi(self, message):
        self.srdi.append(message)


class SilentHandler(QueryHandler):
    """Never responds."""

    def __init__(self):
        self.queries = []

    def process_query(self, query):
        self.queries.append(query)
        return None


def build_resolvers(n=3):
    sim, net, services = build_peers(n)
    resolvers = []
    for svc in services:
        resolvers.append(ResolverService(svc, group_param="netgroup"))
    # full mesh routes for directed tests
    for a in services:
        for b in services:
            if a is not b:
                a.router.add_route(b.peer_id, [b.transport_address])
    return sim, services, resolvers


class TestQueryResponse:
    def test_directed_query_gets_response(self):
        sim, services, (ra, rb, _) = build_resolvers()
        ha, hb = EchoHandler(), EchoHandler()
        ra.register_handler("disco", ha)
        rb.register_handler("disco", hb)
        q = ra.new_query("disco", "ping")
        ra.send_query(services[1].peer_id, q)
        sim.run()
        assert [r.payload for r in ha.responses] == ["echo:ping"]
        assert hb.queries[0].src_peer == services[0].peer_id

    def test_query_ids_are_unique_and_increasing(self):
        _, _, (ra, _, _) = build_resolvers()
        q1 = ra.new_query("h", "a")
        q2 = ra.new_query("h", "b")
        assert q2.query_id > q1.query_id

    def test_silent_handler_sends_no_response(self):
        sim, services, (ra, rb, _) = build_resolvers()
        ha = EchoHandler()
        ra.register_handler("disco", ha)
        rb.register_handler("disco", SilentHandler())
        ra.send_query(services[1].peer_id, ra.new_query("disco", "ping"))
        sim.run()
        assert ha.responses == []

    def test_unknown_handler_query_dropped(self):
        sim, services, (ra, rb, _) = build_resolvers()
        ra.register_handler("disco", EchoHandler())
        ra.send_query(services[1].peer_id, ra.new_query("disco", "ping"))
        sim.run()  # rb has no handler; must not raise

    def test_response_correlates_by_query_id(self):
        sim, services, (ra, rb, _) = build_resolvers()
        ha = EchoHandler()
        ra.register_handler("disco", ha)
        rb.register_handler("disco", EchoHandler())
        q = ra.new_query("disco", "x")
        ra.send_query(services[1].peer_id, q)
        sim.run()
        assert ha.responses[0].query_id == q.query_id

    def test_duplicate_handler_rejected(self):
        _, _, (ra, _, _) = build_resolvers()
        ra.register_handler("h", EchoHandler())
        with pytest.raises(ValueError):
            ra.register_handler("h", EchoHandler())

    def test_forward_query_increments_hop_count(self):
        sim, services, (ra, rb, rc) = build_resolvers()
        hc = SilentHandler()
        rb.register_handler("disco", _Forwarder(rb, services[2].peer_id))
        rc.register_handler("disco", hc)
        ra.register_handler("disco", EchoHandler())
        ra.send_query(services[1].peer_id, ra.new_query("disco", "walk"))
        sim.run()
        assert hc.queries[0].hop_count == 1
        # origin metadata preserved through the forward
        assert hc.queries[0].src_peer == services[0].peer_id


class _Forwarder(QueryHandler):
    """Forwards every query to a fixed next peer (walk building block)."""

    def __init__(self, resolver, next_peer):
        self.resolver = resolver
        self.next_peer = next_peer

    def process_query(self, query):
        self.resolver.forward_query(self.next_peer, query)
        return None


class TestResponseRouting:
    def test_response_uses_embedded_src_route(self):
        # responder has no prior route to the querier; the src_route
        # embedded in the query must be enough
        sim, services, (ra, rb, _) = build_resolvers()
        # remove rb's direct route to a to prove src_route installs it
        rb.endpoint.router.remove_route(services[0].peer_id)
        ha = EchoHandler()
        ra.register_handler("disco", ha)
        rb.register_handler("disco", EchoHandler())
        ra.send_query(services[1].peer_id, ra.new_query("disco", "ping"))
        sim.run()
        assert len(ha.responses) == 1


class TestSrdi:
    def test_srdi_push_dispatches(self):
        sim, services, (ra, rb, _) = build_resolvers()
        hb = EchoHandler()
        rb.register_handler("disco", hb)
        ra.send_srdi(services[1].peer_id, "disco", {"idx": 1})
        sim.run()
        assert len(hb.srdi) == 1
        assert hb.srdi[0].src_peer == services[0].peer_id

    def test_srdi_to_unknown_handler_dropped(self):
        sim, services, (ra, _, _) = build_resolvers()
        ra.send_srdi(services[1].peer_id, "ghost", {})
        sim.run()  # must not raise


class TestPropagation:
    def test_destinationless_query_requires_propagator(self):
        _, _, (ra, _, _) = build_resolvers()
        with pytest.raises(RuntimeError):
            ra.send_query(None, ra.new_query("disco", "flood"))

    def test_destinationless_query_uses_propagator(self):
        _, _, (ra, _, _) = build_resolvers()
        seen = []
        ra.propagator = seen.append
        q = ra.new_query("disco", "flood")
        ra.send_query(None, q)
        assert seen == [q]


class TestCounters:
    def test_sent_counters(self):
        sim, services, (ra, rb, _) = build_resolvers()
        ra.register_handler("disco", EchoHandler())
        rb.register_handler("disco", EchoHandler())
        ra.send_query(services[1].peer_id, ra.new_query("disco", "x"))
        ra.send_srdi(services[1].peer_id, "disco", {})
        sim.run()
        assert ra.queries_sent == 1
        assert ra.srdi_sent == 1
        assert rb.responses_sent == 1
