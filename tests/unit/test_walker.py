"""Unit tests for the walk helper functions."""

import pytest

from repro.advertisement.rdvadv import RdvAdvertisement
from repro.discovery.walker import (
    WALK_DOWN,
    WALK_UP,
    walk_next_target,
    walk_start_targets,
)
from repro.ids import NET_PEER_GROUP_ID, PeerID
from repro.rendezvous.peerview import PeerView


def adv(n):
    return RdvAdvertisement(
        rdv_peer_id=PeerID.from_int(NET_PEER_GROUP_ID, n),
        group_id=NET_PEER_GROUP_ID,
        route_hint=f"tcp://h{n}:1",
    )


def view_with(local, members):
    view = PeerView(adv(local))
    for n in members:
        view.upsert(adv(n), now=0.0)
    return view


def pid(n):
    return PeerID.from_int(NET_PEER_GROUP_ID, n)


class TestWalkStartTargets:
    def test_interior_peer_starts_both_legs(self):
        targets = walk_start_targets(view_with(50, [10, 90]))
        assert (pid(90), WALK_UP) in targets
        assert (pid(10), WALK_DOWN) in targets
        assert len(targets) == 2

    def test_bottom_peer_starts_up_only(self):
        targets = walk_start_targets(view_with(5, [10, 90]))
        assert targets == [(pid(10), WALK_UP)]

    def test_top_peer_starts_down_only(self):
        targets = walk_start_targets(view_with(99, [10, 90]))
        assert targets == [(pid(90), WALK_DOWN)]

    def test_lonely_peer_has_no_legs(self):
        assert walk_start_targets(view_with(50, [])) == []


class TestWalkNextTarget:
    def test_up_is_upper_neighbor(self):
        view = view_with(50, [10, 60, 90])
        assert walk_next_target(view, WALK_UP) == pid(60)

    def test_down_is_lower_neighbor(self):
        view = view_with(50, [10, 60, 90])
        assert walk_next_target(view, WALK_DOWN) == pid(10)

    def test_end_of_list_returns_none(self):
        view = view_with(99, [10])
        assert walk_next_target(view, WALK_UP) is None

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            walk_next_target(view_with(50, [10]), 0)


class TestWalkTermination:
    def test_full_walk_visits_each_member_once_per_direction(self):
        # simulate the walk by hand over a set of consistent views
        members = [10, 20, 30, 40, 50, 60]
        views = {n: view_with(n, [m for m in members if m != n]) for n in members}
        start = 30
        visited = []
        for direction in (WALK_UP, WALK_DOWN):
            current = start
            while True:
                nxt = walk_next_target(views[current], direction)
                if nxt is None:
                    break
                n = int.from_bytes(nxt.unique_value, "big")
                visited.append(n)
                current = n
        assert sorted(visited) == [10, 20, 40, 50, 60]
