"""Unit tests for the shared experiment machinery and the CLI."""

import pytest

from repro.experiments import cli
from repro.experiments.common import (
    DiscoverySample,
    mean_latency_ms,
    run_peerview_overlay,
    run_query_sequence,
    success_rate,
)
from repro.metrics.series import peerview_size_series
from repro.sim import MINUTES


class TestRunPeerviewOverlay:
    def test_collects_events_for_observer(self):
        run = run_peerview_overlay(r=5, duration=5 * MINUTES, observers=[0])
        assert len(run.log.records(observer="rdv-0")) > 0
        assert run.r == 5
        series = peerview_size_series(run.log, "rdv-0")
        assert series.final == 4

    def test_all_observers_by_default(self):
        run = run_peerview_overlay(r=4, duration=5 * MINUTES)
        observers = {r.observer for r in run.log.records()}
        assert observers == {"rdv-0", "rdv-1", "rdv-2", "rdv-3"}

    def test_progress_callback_invoked(self):
        ticks = []
        run_peerview_overlay(
            r=3, duration=12 * MINUTES, observers=[0], progress=ticks.append
        )
        assert ticks and ticks[-1] == 12 * MINUTES


class TestQuerySequence:
    def test_sequential_queries_counted(self):
        from repro.advertisement import FakeAdvertisement
        from repro.config import PlatformConfig
        from repro.deploy import OverlayDescription, build_overlay
        from repro.network import Network
        from repro.sim import Simulator

        sim = Simulator(seed=2)
        overlay = build_overlay(
            sim, Network(sim), PlatformConfig(),
            OverlayDescription(rendezvous_count=4, edge_count=2,
                               edge_attachment=[0, 2]),
        )
        overlay.start()
        sim.run(until=8 * MINUTES)
        overlay.edges[0].discovery.publish(FakeAdvertisement("seq"))
        sim.run(until=sim.now + 2 * MINUTES)
        samples = run_query_sequence(
            sim, overlay.edges[1],
            "repro:FakeAdvertisement", "Name", "seq", count=10,
        )
        assert len(samples) == 10
        assert all(s.found for s in samples)
        # cache flush between queries: every query really hit the net
        assert all(s.latency > 0.001 for s in samples)


class TestStats:
    def test_mean_latency_ms(self):
        samples = [
            DiscoverySample(0.010, True),
            DiscoverySample(0.020, True),
            DiscoverySample(30.0, False),  # timeout excluded
        ]
        assert mean_latency_ms(samples) == pytest.approx(15.0)

    def test_mean_latency_requires_success(self):
        with pytest.raises(RuntimeError):
            mean_latency_ms([DiscoverySample(30.0, False)])

    def test_success_rate(self):
        samples = [DiscoverySample(0.01, True), DiscoverySample(30.0, False)]
        assert success_rate(samples) == 0.5

    def test_success_rate_empty_rejected(self):
        with pytest.raises(RuntimeError):
            success_rate([])


class TestCli:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["no-such-figure"])

    def test_table1_runs(self, capsys):
        assert cli.main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "matches paper: True" in out

    def test_experiment_registry_covers_all_artefacts(self):
        assert set(cli.EXPERIMENTS) == {
            "table1", "fig3-left", "fig3-right", "fig4-left",
            "fig4-right", "baselines", "ablation", "churn",
            "complex-queries", "faults", "transport", "calibration",
            "load",
        }
