"""Tests for the kernel's optimised hot paths.

The run loop has three regimes (check-free fast loop, careful loop,
deadline loop) plus heap compaction and O(1) accounting; these tests
pin the contract that all of them are *behaviour-preserving*: same
fire order, same clock, same counters as the straightforward kernel.
"""

import pytest

import repro.sim.kernel as kernel
from repro.sim import Simulator


def noop(*args):
    pass


# ----------------------------------------------------------------------
# heap compaction
# ----------------------------------------------------------------------
def _cancelled_heavy_drain(sim, generations=8, fanout=10, chains=20):
    """A lease-renewal-style workload: every firing reschedules a batch
    of timers and cancels all but one, leaving the heap mostly dead."""
    fired = []

    def work(chain, depth):
        fired.append((round(sim.now, 9), chain, depth))
        if depth == 0:
            return
        timers = [
            sim.schedule(1.0 + k * 0.25, work, chain, depth - 1)
            for k in range(fanout)
        ]
        for t in timers[1:]:
            t.cancel()

    for c in range(chains):
        sim.schedule(0.01 * c, work, c, generations)
    sim.run()
    return fired, sim.now, sim.events_fired


def _cancelled_heavy_sliced(sim):
    """Same flavour of workload through the deadline loop, in slices."""
    fired = []

    def work(chain):
        fired.append((round(sim.now, 9), chain))
        timers = [sim.schedule(2.0, work, chain) for _ in range(8)]
        for t in timers[:-1]:
            t.cancel()

    for c in range(15):
        sim.schedule(0.1 * c, work, c)
    while sim.now < 40.0:
        sim.run(until=sim.now + 5.0)
    return fired, sim.now, sim.events_fired


class TestHeapCompaction:
    def test_drain_fire_order_identical_with_and_without_compaction(
        self, monkeypatch
    ):
        compacted_sim = Simulator(seed=3)
        compacted = _cancelled_heavy_drain(compacted_sim)
        assert compacted_sim.compactions > 0

        monkeypatch.setattr(kernel, "_COMPACT_MIN_DEAD", 10**9)
        uncompacted_sim = Simulator(seed=3)
        uncompacted = _cancelled_heavy_drain(uncompacted_sim)
        assert uncompacted_sim.compactions == 0

        assert compacted == uncompacted

    def test_sliced_fire_order_identical_with_and_without_compaction(
        self, monkeypatch
    ):
        compacted_sim = Simulator(seed=5)
        compacted = _cancelled_heavy_sliced(compacted_sim)
        assert compacted_sim.compactions > 0

        monkeypatch.setattr(kernel, "_COMPACT_MIN_DEAD", 10**9)
        uncompacted_sim = Simulator(seed=5)
        uncompacted = _cancelled_heavy_sliced(uncompacted_sim)
        assert uncompacted_sim.compactions == 0

        assert compacted == uncompacted

    def test_compaction_shrinks_heap_and_keeps_counters_exact(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), noop) for i in range(200)]
        for h in handles[:150]:
            h.cancel()
        assert sim.compactions > 0
        # _dead always equals the cancelled entries resident in a tier
        assert sim._dead == sum(
            1 for entry in sim._resident_entries() if entry[2]._state is None
        )
        assert sum(1 for _ in sim._resident_entries()) < 200
        assert sim.pending_events == 50
        sim.run()
        assert sim.events_fired == 50
        assert sim._dead == 0


# ----------------------------------------------------------------------
# O(1) accounting
# ----------------------------------------------------------------------
class TestPendingEventsCounter:
    def test_counter_tracks_schedule_cancel_fire(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), noop) for i in range(10)]
        assert sim.pending_events == 10
        assert handles[0].cancel()
        assert handles[1].cancel()
        assert sim.pending_events == 8
        assert not handles[0].cancel()  # idempotent, no double count
        assert sim.pending_events == 8
        sim.step()
        assert sim.pending_events == 7
        sim.run()
        assert sim.pending_events == 0
        assert sim.events_fired == 8

    def test_counter_correct_across_sliced_runs(self):
        sim = Simulator()
        for i in range(6):
            sim.schedule(float(i), noop)
        sim.run(until=2.5)
        assert sim.events_fired == 3
        assert sim.pending_events == 3
        sim.run()
        assert sim.pending_events == 0


# ----------------------------------------------------------------------
# trace-hook registry
# ----------------------------------------------------------------------
class TestHookDedup:
    def test_re_adding_merges_phases(self):
        sim = Simulator()
        seen = []

        def hook(t, phase, h):
            seen.append((phase, h.label))

        sim.add_trace_hook(hook, phases=("fire",))
        sim.add_trace_hook(hook, phases=("done",))
        assert len(sim._trace_hooks) == 1
        sim.schedule(1.0, noop, label="x")
        sim.run()
        assert seen == [("fire", "x"), ("done", "x")]

    def test_duplicate_same_phase_delivers_once(self):
        sim = Simulator()
        calls = []

        def hook(t, phase, h):
            calls.append(phase)

        sim.add_trace_hook(hook)
        sim.add_trace_hook(hook)
        sim.schedule(0.0, noop)
        sim.run()
        assert calls == ["fire"]

    def test_remove_clears_every_phase(self):
        sim = Simulator()
        seen = []

        def hook(t, phase, h):
            seen.append(phase)

        sim.add_trace_hook(hook, phases=("fire",))
        sim.add_trace_hook(hook, phases=("done",))
        sim.remove_trace_hook(hook)
        assert sim._trace_hooks == []
        sim.schedule(0.0, noop)
        sim.run()
        assert seen == []


# ----------------------------------------------------------------------
# mid-run control changes (park/unpark re-dispatch)
# ----------------------------------------------------------------------
class TestMidRunControl:
    def test_stop_mid_run_keeps_remaining_events(self):
        sim = Simulator()
        fired = []

        def ev(i):
            fired.append(i)
            if i == 2:
                sim.stop()

        for i in range(5):
            sim.schedule(float(i), ev, i)
        sim.run()
        assert fired == [0, 1, 2]
        assert sim.pending_events == 2
        assert sim.events_fired == 3
        sim.run()
        assert fired == [0, 1, 2, 3, 4]
        assert sim.events_fired == 5

    def test_cancel_future_event_during_drain(self):
        sim = Simulator()
        fired = []
        victim = []

        def killer():
            fired.append("killer")
            victim[0].cancel()

        victim.append(sim.schedule(2.0, lambda: fired.append("victim")))
        sim.schedule(1.0, killer)
        sim.schedule(3.0, lambda: fired.append("tail"))
        sim.run()
        assert fired == ["killer", "tail"]
        assert sim.events_fired == 2
        assert sim.now == 3.0
        assert sim.pending_events == 0

    def test_hook_added_mid_run_sees_subsequent_events(self):
        sim = Simulator()
        seen = []

        def hook(t, phase, h):
            seen.append((t, h.label))

        sim.schedule(1.0, lambda: sim.add_trace_hook(hook), label="a")
        sim.schedule(2.0, noop, label="b")
        sim.schedule(3.0, noop, label="c")
        sim.run()
        assert seen == [(2.0, "b"), (3.0, "c")]

    def test_hook_removed_mid_run_stops_seeing_events(self):
        sim = Simulator()
        seen = []

        def hook(t, phase, h):
            seen.append(h.label)

        sim.add_trace_hook(hook)
        sim.schedule(1.0, lambda: sim.remove_trace_hook(hook), label="rm")
        sim.schedule(2.0, noop, label="late")
        sim.run()
        assert seen == ["rm"]


# ----------------------------------------------------------------------
# fast loop vs careful loop equivalence
# ----------------------------------------------------------------------
class TestLoopEquivalence:
    @staticmethod
    def _chain(sim):
        fired = []

        def tick(n):
            fired.append((sim.now, n))
            if n:
                sim.schedule(0.5, tick, n - 1)

        sim.schedule(0.0, tick, 40)
        sim.run()
        return fired, sim.now, sim.events_fired

    def test_max_events_kernel_matches_fast_kernel(self):
        # max_events forces the careful loop; default takes the fast one
        assert self._chain(Simulator(seed=1)) == self._chain(
            Simulator(seed=1, max_events=10_000)
        )

    def test_hooked_kernel_matches_fast_kernel(self):
        fast = self._chain(Simulator(seed=1))
        hooked_sim = Simulator(seed=1)
        hooked_sim.add_trace_hook(lambda t, p, h: None)
        assert self._chain(hooked_sim) == fast
