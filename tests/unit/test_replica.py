"""Unit tests for the ReplicaPeer function."""

import pytest

from repro.discovery.replica import (
    ReplicaFunction,
    SHA1_MAX_HASH,
    index_tuple_key,
    sha1_hash,
)


class TestIndexTupleKey:
    def test_concatenation_order(self):
        # §3.3: type + attribute + value, e.g. "PeerNameTest"
        assert index_tuple_key(("Peer", "Name", "Test")) == "PeerNameTest"

    def test_plain_concatenation_is_faithful_even_if_ambiguous(self):
        # JXTA concatenates without separators, so distinct tuples can
        # collide ("a"+"bc" == "ab"+"c"); we reproduce the spec as-is.
        assert index_tuple_key(("a", "bc", "d")) == index_tuple_key(("ab", "c", "d"))


class TestSha1Hash:
    def test_range(self):
        h = sha1_hash("PeerNameTest")
        assert 0 <= h < SHA1_MAX_HASH

    def test_deterministic(self):
        assert sha1_hash("x") == sha1_hash("x")

    def test_known_value(self):
        import hashlib
        expected = int.from_bytes(hashlib.sha1(b"PeerNameTest").digest(), "big")
        assert sha1_hash("PeerNameTest") == expected


class TestPaperExample:
    """The worked example of §3.3 / Table 1: hash = 116, MAX_HASH = 200,
    6 peerview members -> replica rank floor(116*6/200) = 3 (peer R4)."""

    def test_rank_is_3(self):
        fn = ReplicaFunction(max_hash=200, hash_fn=lambda key: 116)
        assert fn.rank(("Peer", "Name", "Test"), member_count=6) == 3

    def test_rank_scales_with_view_size(self):
        fn = ReplicaFunction(max_hash=200, hash_fn=lambda key: 116)
        assert fn.rank(("Peer", "Name", "Test"), member_count=3) == 1
        assert fn.rank(("Peer", "Name", "Test"), member_count=12) == 6


class TestReplicaFunction:
    def test_rank_always_in_range(self):
        fn = ReplicaFunction()
        for value in ("a", "b", "c", "PeerNameTest", "x" * 100):
            for count in (1, 2, 6, 100, 580):
                rank = fn.rank(("jxta:PA", "Name", value), count)
                assert 0 <= rank < count

    def test_rank_uniformity(self):
        fn = ReplicaFunction()
        counts = [0] * 10
        for i in range(5000):
            rank = fn.rank(("jxta:PA", "Name", f"value-{i}"), 10)
            counts[rank] += 1
        assert all(350 < c < 650 for c in counts)

    def test_bad_member_count_rejected(self):
        fn = ReplicaFunction()
        with pytest.raises(ValueError):
            fn.rank(("t", "a", "v"), 0)

    def test_bad_max_hash_rejected(self):
        with pytest.raises(ValueError):
            ReplicaFunction(max_hash=0)

    def test_hash_out_of_range_rejected(self):
        fn = ReplicaFunction(max_hash=10, hash_fn=lambda key: 10)
        with pytest.raises(ValueError):
            fn.rank(("t", "a", "v"), 5)

    def test_same_tuple_same_replica_everywhere(self):
        # two peers with identical views must compute the same replica
        fn_a, fn_b = ReplicaFunction(), ReplicaFunction()
        t = ("jxta:PA", "Name", "Test")
        assert fn_a.rank(t, 50) == fn_b.rank(t, 50)
