"""Unit tests for the Peer Information Protocol."""

import pytest

from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.network import Network
from repro.sim import MINUTES, SECONDS, Simulator


def build(seed=8):
    sim = Simulator(seed=seed)
    network = Network(sim)
    overlay = build_overlay(
        sim, network, PlatformConfig(),
        OverlayDescription(rendezvous_count=3, edge_count=2,
                           edge_attachment=[0, 1]),
    )
    overlay.start()
    sim.run(until=8 * MINUTES)
    return sim, overlay


class TestPing:
    def test_edge_pings_rendezvous(self):
        sim, overlay = build()
        edge = overlay.edges[0]
        target = overlay.rendezvous[0]
        results = []
        edge.peerinfo.ping(
            target.peer_id,
            callback=lambda info, rtt: results.append((info, rtt)),
        )
        sim.run(until=sim.now + 30 * SECONDS)
        assert len(results) == 1
        info, rtt = results[0]
        assert info.peer_id == target.peer_id
        assert info.name == target.name
        assert info.is_rendezvous
        assert info.uptime > 0
        assert info.messages_in > 0
        assert 0 < rtt < 1.0

    def test_rendezvous_pings_edge(self):
        sim, overlay = build()
        rdv = overlay.rendezvous[0]
        edge = overlay.edges[0]
        results = []
        rdv.peerinfo.ping(
            edge.peer_id, callback=lambda info, rtt: results.append(info)
        )
        sim.run(until=sim.now + 30 * SECONDS)
        assert len(results) == 1
        assert not results[0].is_rendezvous

    def test_ping_dead_peer_times_out(self):
        sim, overlay = build()
        edge = overlay.edges[0]
        victim = overlay.rendezvous[2]
        victim_id = victim.peer_id
        # ensure a route exists, then kill the peer
        edge.router.add_route(victim_id, [victim.address])
        victim.crash()
        timeouts = []
        edge.peerinfo.ping(
            victim_id,
            callback=lambda info, rtt: pytest.fail("dead peer answered"),
            on_timeout=lambda: timeouts.append(1),
            timeout=5.0,
        )
        sim.run(until=sim.now + 30 * SECONDS)
        assert timeouts == [1]

    def test_rtt_reflects_network_distance(self):
        sim, overlay = build()
        edge = overlay.edges[0]
        rtts = {}
        for rdv in overlay.rendezvous[:2]:
            edge.peerinfo.ping(
                rdv.peer_id,
                callback=lambda info, rtt, n=rdv.name: rtts.update({n: rtt}),
            )
        sim.run(until=sim.now + 30 * SECONDS)
        assert len(rtts) == 2
        assert all(rtt > 0 for rtt in rtts.values())
