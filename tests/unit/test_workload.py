"""Unit tests for the repro.workload subsystem (arrivals, catalogs,
SLO tracking, traces, specs)."""

import json
import random

import pytest

from repro.obs.histogram import Histogram
from repro.sim import Simulator
from repro.workload import (
    Catalog,
    ConstantArrivals,
    DiurnalArrivals,
    MmppArrivals,
    PoissonArrivals,
    SloTracker,
    TraceOp,
    WorkloadEngine,
    WorkloadSpec,
    WorkloadTraceRecorder,
    load_trace_lines,
    make_arrivals,
    noiser_catalog,
    publish_catalog,
    replay_ops,
)


# ---------------------------------------------------------------- arrivals
class TestArrivals:
    def test_constant_is_an_exact_grid(self):
        times = list(ConstantArrivals(2.0).iter_times(random.Random(1), 10.0, 12.0))
        assert times == [10.5, 11.0, 11.5, 12.0]

    def test_constant_draws_no_randomness(self):
        rng = random.Random(7)
        list(ConstantArrivals(5.0).iter_times(rng, 0.0, 3.0))
        assert rng.random() == random.Random(7).random()

    def test_poisson_deterministic_per_stream(self):
        a = list(PoissonArrivals(3.0).iter_times(random.Random(42), 0.0, 50.0))
        b = list(PoissonArrivals(3.0).iter_times(random.Random(42), 0.0, 50.0))
        assert a == b
        assert all(t2 > t1 for t1, t2 in zip(a, a[1:]))
        assert all(0.0 < t <= 50.0 for t in a)

    def test_poisson_rate_roughly_respected(self):
        times = list(PoissonArrivals(4.0).iter_times(random.Random(3), 0.0, 500.0))
        assert 1600 < len(times) < 2400  # mean 2000

    def test_mmpp_bursts_and_monotone_times(self):
        proc = MmppArrivals(base_rate=1.0, burst_rate=50.0,
                            mean_base_dwell=20.0, mean_burst_dwell=5.0)
        times = list(proc.iter_times(random.Random(11), 0.0, 200.0))
        assert all(t2 >= t1 for t1, t2 in zip(times, times[1:]))
        assert len(times) > 200  # far above the base rate alone

    def test_diurnal_ramp_denser_at_peak(self):
        proc = DiurnalArrivals(base_rate=2.0, amplitude=0.9,
                               period=100.0, phase=25.0)
        times = list(proc.iter_times(random.Random(5), 0.0, 100.0))
        # rate(t) = 2·(1 + 0.9·sin(2π(t−25)/100)) is above base on
        # (25, 75) and below it elsewhere in the window
        high = sum(1 for t in times if 25.0 < t < 75.0)
        low = len(times) - high
        assert high > low

    def test_factory_roundtrip_and_scaling(self):
        for spec in (
            {"kind": "constant", "rate": 2.0},
            {"kind": "poisson", "rate": 3.0},
            {"kind": "mmpp", "base_rate": 1.0, "burst_rate": 10.0},
            {"kind": "diurnal", "base_rate": 2.0, "amplitude": 0.5,
             "period": 60.0},
        ):
            proc = make_arrivals(spec)
            assert proc.spec()["kind"] == spec["kind"]
            assert make_arrivals(proc.spec()).spec() == proc.spec()
            doubled = make_arrivals(spec, rate_scale=2.0)
            assert doubled.mean_rate() == pytest.approx(2.0 * proc.mean_rate())

    def test_factory_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown arrival"):
            make_arrivals({"kind": "fractal", "rate": 1.0})

    def test_rates_must_be_positive(self):
        with pytest.raises(ValueError):
            ConstantArrivals(0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(-1.0)


# ---------------------------------------------------------------- catalog
class TestCatalog:
    def test_zipf_prefers_low_indices(self):
        cat = Catalog.zipf(50, skew=1.2)
        rng = random.Random(9)
        draws = [cat.sample(rng) for _ in range(2000)]
        head = sum(1 for d in draws if d < 5)
        tail = sum(1 for d in draws if d >= 45)
        assert head > 5 * tail

    def test_uniform_is_flat(self):
        cat = Catalog.uniform(10)
        rng = random.Random(2)
        draws = [cat.sample(rng) for _ in range(5000)]
        counts = [draws.count(i) for i in range(10)]
        assert min(counts) > 300  # ~500 each

    def test_sampling_is_stream_deterministic(self):
        cat = Catalog.zipf(30, skew=0.8)
        a = [cat.sample_name(random.Random(77)) for _ in range(1)]
        b = [cat.sample_name(random.Random(77)) for _ in range(1)]
        assert a == b

    def test_spec_roundtrip(self):
        for cat in (Catalog.uniform(12, payload_bytes=32),
                    Catalog.zipf(12, skew=1.5)):
            again = Catalog.from_spec(cat.spec())
            assert again.names == cat.names
            assert again.spec() == cat.spec()

    def test_from_spec_rejects_unknown_popularity(self):
        with pytest.raises(ValueError, match="popularity"):
            Catalog.from_spec({"popularity": "pareto", "size": 5})

    def test_names_must_be_unique(self):
        with pytest.raises(ValueError, match="unique"):
            Catalog(["a", "a"])

    def test_adv_and_index_lookup(self):
        cat = Catalog.uniform(4, prefix="svc", payload_bytes=8)
        adv = cat.adv_named("svc-2")
        assert adv.name == "svc-2"
        assert adv.payload == "x" * 8
        assert cat.index_of("svc-2") == 2
        assert cat.index_tuple(2)[2] == "svc-2"

    def test_noiser_catalog_matches_legacy_naming(self):
        cat = noiser_catalog(3, 2)
        assert cat.names == [
            "fake-0-0", "fake-0-1", "fake-1-0",
            "fake-1-1", "fake-2-0", "fake-2-1",
        ]
        assert cat.payload_bytes == 64

    def test_publish_catalog_splits_contiguously(self):
        class Edge:
            def __init__(self):
                self.published = []
                self.discovery = self

            def publish(self, adv, lifetime=None, expiration=None):
                self.published.append((adv.name, expiration))

        edges = [Edge(), Edge()]
        cat = Catalog.uniform(5, prefix="it")
        n = publish_catalog(edges, cat, expiration=100.0)
        assert n == 5
        assert [name for name, _ in edges[0].published] == ["it-0", "it-1", "it-2"]
        assert [name for name, _ in edges[1].published] == ["it-3", "it-4"]
        assert all(exp == 100.0 for e in edges for _, exp in e.published)


# ------------------------------------------------------------------- SLO
class TestSloTracker:
    def test_counts_and_rates(self):
        slo = SloTracker()
        slo.record_success("w", "query", 0.010)
        slo.record_success("w", "query", 0.020)
        slo.record_timeout("w", "query")
        slo.record_failure("w", "query")
        slo.record_retry("w", "query")
        assert slo.requests("w", "query") == 4
        snap = slo.snapshot()["w.query"]
        assert snap["ok"] == 2
        assert snap["timeout_rate"] == pytest.approx(0.25)
        assert snap["failure_rate"] == pytest.approx(0.25)
        assert snap["retries"] == 1
        assert snap["p50_ms"] >= 10.0

    def test_latency_less_success_skips_histogram(self):
        slo = SloTracker()
        slo.record_success("w", "publish")
        assert slo.histogram("w", "publish").count == 0
        assert "p50_ms" not in slo.snapshot()["w.publish"]

    def test_merge_adds_everything(self):
        a, b = SloTracker(), SloTracker()
        a.record_success("w", "query", 0.010)
        b.record_success("w", "query", 0.030)
        b.record_timeout("w", "other")
        a.merge(b)
        assert a.requests("w", "query") == 2
        assert a.requests("w", "other") == 1
        assert a.histogram("w", "query").count == 2

    def test_merged_classmethod_and_key_order(self):
        trackers = []
        for op in ("c", "a", "b"):
            t = SloTracker()
            t.record_success("w", op, 0.001)
            trackers.append(t)
        merged = SloTracker.merged(trackers)
        assert list(merged.snapshot()) == ["w.a", "w.b", "w.c"]

    def test_snapshot_histogram_roundtrips(self):
        slo = SloTracker()
        for v in (0.004, 0.02, 0.4, 2.0):
            slo.record_success("w", "query", v)
        snap = slo.snapshot()["w.query"]["histogram"]
        rebuilt = Histogram.from_snapshot(snap)
        assert rebuilt.snapshot() == snap
        assert rebuilt.p99 == slo.histogram("w", "query").p99


# ------------------------------------------------------------------ trace
class TestTrace:
    def test_canonical_lines_and_digest(self):
        rec = WorkloadTraceRecorder()
        rec.record(1.5, "query-0", "query", "item-3")
        rec.record(1.52, "query-0", "query.ok", "item-3", 0.02)
        lines = rec.lines()
        assert lines[0] == '{"client":"query-0","item":"item-3","op":"query","t":1.5}'
        assert "latency" in lines[1]
        rec2 = WorkloadTraceRecorder()
        rec2.record(1.5, "query-0", "query", "item-3")
        rec2.record(1.52, "query-0", "query.ok", "item-3", 0.02)
        assert rec.digest() == rec2.digest()

    def test_roundtrip_through_file(self, tmp_path):
        rec = WorkloadTraceRecorder()
        rec.record(0.0, "pub-0", "publish", "a")
        rec.record(3.25, "query-1", "query", "b")
        rec.record(3.5, "query-1", "query.timeout", "b")
        path = rec.write(tmp_path / "trace.jsonl")
        ops = load_trace_lines(path)
        assert ops == rec.ops
        assert [op.op for op in replay_ops(ops)] == ["publish", "query"]

    def test_trace_op_json_roundtrip(self):
        op = TraceOp(t=12.125, client="c", op="query.ok", item="i", latency=0.5)
        assert TraceOp.from_json(op.to_json()) == op
        # canonical float repr means byte-stable re-serialisation
        assert TraceOp.from_json(op.to_json()).to_json() == op.to_json()


# ------------------------------------------------------------------- spec
class TestWorkloadSpec:
    def test_roundtrip(self):
        spec = WorkloadSpec(queriers=3, publishers=1, closed_clients=2,
                            rate_scale=1.5)
        again = WorkloadSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again.to_dict() == spec.to_dict()

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown workload spec"):
            WorkloadSpec.from_dict({"queriers": 1, "sharding": True})

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(duration=0.0)
        with pytest.raises(ValueError):
            WorkloadSpec(queriers=0, publishers=0, closed_clients=0)
        with pytest.raises(ValueError):
            WorkloadSpec(seed_time=10 * 60.0, warmup=60.0)
        with pytest.raises(ValueError):
            WorkloadSpec(arrivals={"kind": "nope", "rate": 1.0})

    def test_expected_requests_scales(self):
        spec = WorkloadSpec(duration=100.0, warmup=120.0, seed_time=60.0,
                            queriers=4, publishers=0,
                            arrivals={"kind": "constant", "rate": 2.0})
        assert spec.expected_requests() == pytest.approx(800.0)
        spec2 = WorkloadSpec(**{**spec.to_dict(), "rate_scale": 2.0})
        assert spec2.expected_requests() == pytest.approx(1600.0)

    def test_engine_needs_enough_edges(self):
        sim = Simulator(seed=1)
        spec = WorkloadSpec(queriers=3, publishers=1)
        with pytest.raises(ValueError, match="edge peer"):
            WorkloadEngine(spec, sim, edges=[object(), object()])
