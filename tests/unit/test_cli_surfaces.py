"""Direct unit coverage for CLI surfaces introduced alongside the
observability, benchmarking and checkpointing layers:

* ``jxta-repro trace <target>`` (:func:`repro.obs.cli.trace_main`);
* ``scripts/bench_trajectory.py memory`` (telemetry pretty-printer);
* ``jxta-repro <exp> --warm-start / --checkpoint-dir`` parsing and
  error paths.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.experiments.cli import main as cli_main
from repro.obs.cli import trace_main

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


# ---------------------------------------------------------------------------
# jxta-repro trace
# ---------------------------------------------------------------------------

def test_trace_campaign_target_writes_artefacts(tmp_path, capsys):
    rc = trace_main(
        ["fig3-smoke", "--out", str(tmp_path), "--jsonl"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    trace_path = tmp_path / "trace-fig3-smoke.json"
    jsonl_path = tmp_path / "trace-fig3-smoke.jsonl"
    metrics_path = tmp_path / "metrics-fig3-smoke.json"
    for path in (trace_path, jsonl_path, metrics_path):
        assert path.exists(), path
        assert f"# wrote {path}" in out
    trace = json.loads(trace_path.read_text())
    assert trace["traceEvents"], "chrome trace has no events"
    assert jsonl_path.read_text().strip(), "JSONL timeline empty"
    metrics = json.loads(metrics_path.read_text())
    assert metrics.get("counters"), "metrics snapshot has no counters"


def test_trace_categories_filter_limits_events(tmp_path):
    trace_main(
        ["fig3-smoke", "--out", str(tmp_path), "--categories",
         "peerview"]
    )
    trace = json.loads(
        (tmp_path / "trace-fig3-smoke.json").read_text()
    )
    cats = {e.get("cat") for e in trace["traceEvents"] if e.get("cat")}
    assert cats <= {"peerview"}, cats


def test_trace_rejects_unknown_target():
    with pytest.raises(SystemExit) as exc:
        trace_main(["no-such-target"])
    assert exc.value.code == 2


def test_main_cli_delegates_trace(tmp_path, capsys):
    rc = cli_main(["trace", "fig3-smoke", "--out", str(tmp_path)])
    assert rc == 0
    assert (tmp_path / "trace-fig3-smoke.json").exists()
    assert "perfetto" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# scripts/bench_trajectory.py memory
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def bench_trajectory():
    spec = importlib.util.spec_from_file_location(
        "bench_trajectory", REPO_ROOT / "scripts" / "bench_trajectory.py"
    )
    module = importlib.util.module_from_spec(spec)
    saved = sys.modules.get("bench_trajectory")
    sys.modules["bench_trajectory"] = module
    spec.loader.exec_module(module)
    yield module
    if saved is None:
        sys.modules.pop("bench_trajectory", None)
    else:
        sys.modules["bench_trajectory"] = saved


def _fake_report(tmp_path, benchmarks):
    path = tmp_path / "report.json"
    path.write_text(json.dumps({"benchmarks": benchmarks}))
    return str(path)


def test_memory_prints_telemetry(bench_trajectory, tmp_path, capsys):
    report = _fake_report(
        tmp_path,
        [
            {
                "name": "test_bench_scaling",
                "stats": {"min": 0.5},
                "extra_info": {
                    "peak_rss_kb": 150 * 1024,
                    "tracemalloc_peak_kb": 2048,
                    "tracemalloc_alloc_blocks": 777,
                    "alloc_per_event": 1.25,
                },
            }
        ],
    )
    rc = bench_trajectory.main(["memory", report])
    assert rc == 0
    out = capsys.readouterr().out
    assert "test_bench_scaling: peak RSS 150 MB" in out
    assert "1.25 allocated blocks/event" in out
    assert "tracemalloc peak 2.0 MB" in out
    assert "777 live allocation blocks" in out


def test_memory_empty_report_is_an_error(
    bench_trajectory, tmp_path, capsys
):
    report = _fake_report(tmp_path, [])
    rc = bench_trajectory.main(["memory", report])
    assert rc == 1
    assert "no benchmarks found" in capsys.readouterr().err


def test_check_enforces_rss_floor(bench_trajectory, tmp_path, capsys):
    report = _fake_report(
        tmp_path,
        [
            {
                "name": "b",
                "stats": {"min": 0.5},
                "extra_info": {"peak_rss_kb": 2000},
            }
        ],
    )
    rc = bench_trajectory.main(
        ["check", report, "--bench", "b", "--max-rss-kb", "1000"]
    )
    assert rc == 1
    assert "more memory than the floor" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# --warm-start / --checkpoint-dir
# ---------------------------------------------------------------------------

def test_warm_start_miss_then_hit(tmp_path, capsys):
    cache = tmp_path / "cache"
    rc = cli_main(
        ["load", "--warm-start", "--checkpoint-dir", str(cache)]
    )
    assert rc == 0
    first = capsys.readouterr().out
    assert "# checkpoints: 0 hit(s), 1 miss(es)" in first

    rc = cli_main(
        ["load", "--warm-start", "--checkpoint-dir", str(cache)]
    )
    assert rc == 0
    second = capsys.readouterr().out
    assert "# checkpoints: 1 hit(s), 0 miss(es)" in second


def test_checkpoint_dir_implies_warm_start(tmp_path, capsys):
    rc = cli_main(["load", "--checkpoint-dir", str(tmp_path / "c")])
    assert rc == 0
    assert "# checkpoints:" in capsys.readouterr().out


def test_no_warm_start_no_checkpoint_summary(capsys):
    rc = cli_main(["load"])
    assert rc == 0
    assert "# checkpoints:" not in capsys.readouterr().out


def test_seeds_must_be_positive():
    with pytest.raises(SystemExit) as exc:
        cli_main(["load", "--seeds", "0"])
    assert exc.value.code == 2
