"""Unit tests for the network transport."""

import pytest

from repro.network.latency import ConstantLatency
from repro.network.message import Envelope
from repro.network.site import place_nodes
from repro.network.transport import DeliveryError, Network
from repro.sim import Simulator


def make_net(loss_rate=0.0, sw_overhead=0.0, latency=0.001):
    sim = Simulator(seed=42)
    net = Network(
        sim,
        latency=ConstantLatency(latency),
        sw_overhead=sw_overhead,
        loss_rate=loss_rate,
    )
    nodes = place_nodes(4)
    return sim, net, nodes


class TestAttachment:
    def test_attach_and_send(self):
        sim, net, nodes = make_net()
        received = []
        net.attach("a", nodes[0], received.append)
        net.attach("b", nodes[1], received.append)
        net.send("a", "b", {"hello": 1})
        sim.run()
        assert len(received) == 1
        assert received[0].payload == {"hello": 1}

    def test_double_attach_rejected(self):
        _, net, nodes = make_net()
        net.attach("a", nodes[0], lambda e: None)
        with pytest.raises(DeliveryError):
            net.attach("a", nodes[1], lambda e: None)

    def test_detach_is_idempotent(self):
        _, net, nodes = make_net()
        net.attach("a", nodes[0], lambda e: None)
        net.detach("a")
        net.detach("a")
        assert not net.is_attached("a")

    def test_node_of(self):
        _, net, nodes = make_net()
        net.attach("a", nodes[2], lambda e: None)
        assert net.node_of("a") is nodes[2]

    def test_node_of_unknown_raises(self):
        _, net, _ = make_net()
        with pytest.raises(DeliveryError):
            net.node_of("ghost")


class TestDelivery:
    def test_delivery_delay_includes_latency_and_serialization(self):
        sim, net, nodes = make_net(latency=0.002)
        times = []
        net.attach("a", nodes[0], lambda e: None)
        net.attach("b", nodes[1], lambda e: times.append(sim.now))
        net.send("a", "b", "x", size_bytes=125_000)  # 1 Mb => 1 ms at 1 Gb/s
        sim.run()
        assert times[0] == pytest.approx(0.002 + 0.001)

    def test_send_from_unknown_source_rejected(self):
        _, net, _ = make_net()
        with pytest.raises(DeliveryError):
            net.send("ghost", "b", "x")

    def test_send_to_unknown_destination_drops(self):
        sim, net, nodes = make_net()
        drops = []
        net.attach("a", nodes[0], lambda e: None)
        net.send("a", "ghost", "x", on_drop=drops.append)
        sim.run()
        assert len(drops) == 1
        assert net.stats.messages_dropped == 1

    def test_destination_dying_in_flight_drops(self):
        sim, net, nodes = make_net()
        received, drops = [], []
        net.attach("a", nodes[0], lambda e: None)
        net.attach("b", nodes[1], received.append)
        net.send("a", "b", "x", on_drop=drops.append)
        net.detach("b")  # dies before delivery
        sim.run()
        assert received == []
        assert len(drops) == 1

    def test_messages_preserve_fifo_for_same_size(self):
        sim, net, nodes = make_net()
        seen = []
        net.attach("a", nodes[0], lambda e: None)
        net.attach("b", nodes[1], lambda e: seen.append(e.payload))
        for i in range(5):
            net.send("a", "b", i)
        sim.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_loss_rate_drops_fraction(self):
        sim, net, nodes = make_net(loss_rate=0.5)
        received = []
        net.attach("a", nodes[0], lambda e: None)
        net.attach("b", nodes[1], received.append)
        for _ in range(400):
            net.send("a", "b", "x")
        sim.run()
        assert 120 < len(received) < 280  # ~200 expected

    def test_invalid_constructor_args(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Network(sim, bandwidth_bps=0)
        with pytest.raises(ValueError):
            Network(sim, sw_overhead=-1)
        with pytest.raises(ValueError):
            Network(sim, loss_rate=1.0)


class TestStats:
    def test_counters(self):
        sim, net, nodes = make_net()
        net.attach("a", nodes[0], lambda e: None)
        net.attach("b", nodes[1], lambda e: None)
        net.send("a", "b", "x", size_bytes=100)
        net.send("a", "ghost", "y", size_bytes=50)
        sim.run()
        assert net.stats.messages_sent == 2
        assert net.stats.messages_delivered == 1
        assert net.stats.messages_dropped == 1
        assert net.stats.bytes_sent == 150

    def test_site_pair_accounting(self):
        sim, net, nodes = make_net()
        # nodes 0..3 round-robin over 9 sites: all on different sites
        net.attach("a", nodes[0], lambda e: None)
        net.attach("b", nodes[1], lambda e: None)
        net.send("a", "b", "x")
        sim.run()
        assert net.stats.inter_site_messages == 1
        assert net.stats.intra_site_messages == 0

    def test_bandwidth_bps(self):
        sim, net, nodes = make_net()
        net.attach("a", nodes[0], lambda e: None)
        net.attach("b", nodes[1], lambda e: None)
        net.send("a", "b", "x", size_bytes=1000)
        sim.run()
        assert net.stats.bandwidth_bps(8.0) == pytest.approx(1000.0)

    def test_bandwidth_requires_positive_elapsed(self):
        _, net, _ = make_net()
        with pytest.raises(ValueError):
            net.stats.bandwidth_bps(0.0)


class TestEgressQueueing:
    def test_burst_from_one_node_serializes(self):
        sim, net, nodes = make_net(latency=0.0)
        times = []
        net.attach("a", nodes[0], lambda e: None)
        net.attach("b", nodes[1], lambda e: times.append(sim.now))
        # three 1 Mb messages: 1 ms serialization each at 1 Gb/s
        for _ in range(3):
            net.send("a", "b", "x", size_bytes=125_000)
        sim.run()
        assert times == pytest.approx([0.001, 0.002, 0.003])
        assert net.peak_queue_delay == pytest.approx(0.002)

    def test_different_nodes_do_not_queue_on_each_other(self):
        sim, net, nodes = make_net(latency=0.0)
        times = []
        net.attach("a", nodes[0], lambda e: None)
        net.attach("c", nodes[2], lambda e: None)
        net.attach("b", nodes[1], lambda e: times.append(sim.now))
        net.send("a", "b", "x", size_bytes=125_000)
        net.send("c", "b", "y", size_bytes=125_000)
        sim.run()
        assert times == pytest.approx([0.001, 0.001])

    def test_queue_drains_over_time(self):
        sim, net, nodes = make_net(latency=0.0)
        times = []
        net.attach("a", nodes[0], lambda e: None)
        net.attach("b", nodes[1], lambda e: times.append(sim.now))
        net.send("a", "b", "x", size_bytes=125_000)
        sim.run()  # NIC idle again
        net.send("a", "b", "y", size_bytes=125_000)
        sim.run()
        # second message sees no queueing: 1 ms after its own send time
        assert times[1] - times[0] >= 0.001

    def test_queueing_can_be_disabled(self):
        sim = Simulator(seed=1)
        net = Network(
            sim, latency=ConstantLatency(0.0), sw_overhead=0.0,
            egress_queueing=False,
        )
        nodes = place_nodes(2)
        times = []
        net.attach("a", nodes[0], lambda e: None)
        net.attach("b", nodes[1], lambda e: times.append(sim.now))
        for _ in range(3):
            net.send("a", "b", "x", size_bytes=125_000)
        sim.run()
        assert times == pytest.approx([0.001, 0.001, 0.001])
        assert net.peak_queue_delay == 0.0


class TestEnvelope:
    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            Envelope(src="a", dst="b", payload=None, size_bytes=0)

    def test_ids_unique(self):
        a = Envelope(src="a", dst="b", payload=None)
        b = Envelope(src="a", dst="b", payload=None)
        assert a.envelope_id != b.envelope_id
