"""Unit tests for the endpoint layer (addresses, service, ERP router)."""

import random

import pytest

from repro.endpoint import (
    EndpointAddress,
    EndpointMessage,
    EndpointRouter,
    EndpointService,
)
from repro.endpoint.address import tcp_address
from repro.ids import IDFactory
from repro.network.latency import ConstantLatency
from repro.network.site import place_nodes
from repro.network.transport import Network
from repro.sim import Simulator


class TestEndpointAddress:
    def test_parse_full(self):
        a = EndpointAddress.parse("jxta://abc123/svc/param")
        assert (a.protocol, a.host, a.service_name, a.service_param) == (
            "jxta", "abc123", "svc", "param",
        )

    def test_parse_transport_only(self):
        a = EndpointAddress.parse("tcp://rennes-0:9701")
        assert a.transport_part == "tcp://rennes-0:9701"
        assert a.service_name == ""

    def test_str_roundtrip(self):
        text = "jxta://abc/svc/p"
        assert str(EndpointAddress.parse(text)) == text

    def test_with_service(self):
        a = EndpointAddress.parse("tcp://h:1").with_service("s", "p")
        assert str(a) == "tcp://h:1/s/p"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            EndpointAddress.parse("no-scheme")

    def test_tcp_address_helper(self):
        assert tcp_address("rennes-0", 9701) == "tcp://rennes-0:9701"
        with pytest.raises(ValueError):
            tcp_address("h", 0)


def build_peers(n=3, seed=1):
    """Create n endpoint services with routers on a fast test network."""
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.001), sw_overhead=0.0)
    nodes = place_nodes(n)
    factory = IDFactory(random.Random(seed))
    services = []
    for i in range(n):
        pid = factory.new_peer_id()
        svc = EndpointService(sim, net, pid, nodes[i], tcp_address(nodes[i].hostname, 9701))
        EndpointRouter(svc)
        svc.attach()
        services.append(svc)
    return sim, net, services


def msg(src, dst, body="hello", service="svc", param="p"):
    return EndpointMessage(
        src_peer=src.peer_id,
        dst_peer=dst.peer_id,
        service_name=service,
        service_param=param,
        body=body,
    )


class TestEndpointService:
    def test_direct_send_dispatches_to_listener(self):
        sim, _, (a, b, _) = build_peers()
        got = []
        b.add_listener("svc", "p", got.append)
        a.send_direct(b.transport_address, msg(a, b))
        sim.run()
        assert len(got) == 1
        assert got[0].body == "hello"

    def test_unknown_service_is_dropped_silently(self):
        sim, _, (a, b, _) = build_peers()
        a.send_direct(b.transport_address, msg(a, b, service="ghost"))
        sim.run()  # must not raise

    def test_wildcard_param_listener(self):
        sim, _, (a, b, _) = build_peers()
        got = []
        b.add_listener("svc", "*", got.append)
        a.send_direct(b.transport_address, msg(a, b, param="anything"))
        sim.run()
        assert len(got) == 1

    def test_duplicate_listener_rejected(self):
        _, _, (a, _, _) = build_peers()
        a.add_listener("svc", "p", lambda m: None)
        with pytest.raises(ValueError):
            a.add_listener("svc", "p", lambda m: None)

    def test_detach_stops_delivery(self):
        sim, net, (a, b, _) = build_peers()
        got = []
        b.add_listener("svc", "p", got.append)
        b.detach()
        a.send_direct(b.transport_address, msg(a, b))
        sim.run()
        assert got == []
        assert net.stats.messages_dropped == 1

    def test_message_counters(self):
        sim, _, (a, b, _) = build_peers()
        b.add_listener("svc", "p", lambda m: None)
        a.send_direct(b.transport_address, msg(a, b))
        sim.run()
        assert a.messages_out == 1
        assert b.messages_in == 1

    def test_size_includes_header(self):
        _, _, (a, b, _) = build_peers()
        m = msg(a, b, body="x" * 100)
        assert m.size_bytes() >= 100 + 200


class TestRouter:
    def test_send_to_peer_with_installed_route(self):
        sim, _, (a, b, _) = build_peers()
        got = []
        b.add_listener("svc", "p", got.append)
        a.router.add_route(b.peer_id, [b.transport_address])
        a.send_to_peer(msg(a, b))
        sim.run()
        assert len(got) == 1

    def test_no_route_drops_and_notifies(self):
        sim, _, (a, b, _) = build_peers()
        drops = []
        a.send_to_peer(msg(a, b), on_drop=drops.append)
        sim.run()
        assert len(drops) == 1
        assert a.router.no_route_drops == 1

    def test_default_route_relays_via_intermediate(self):
        # a -> c (relay) -> b : a only knows c; c knows b directly
        sim, _, (a, b, c) = build_peers()
        got = []
        b.add_listener("svc", "p", got.append)
        a.router.set_default_route(c.transport_address)
        c.router.add_route(b.peer_id, [b.transport_address])
        a.send_to_peer(msg(a, b))
        sim.run()
        assert len(got) == 1
        assert got[0].hops_taken == 1
        assert c.messages_relayed == 1

    def test_ttl_exhaustion_breaks_forwarding_loop(self):
        # a and b default-route to each other; an unroutable message
        # ping-pongs until TTL dies instead of looping forever
        sim, _, (a, b, c) = build_peers()
        a.router.set_default_route(b.transport_address)
        b.router.set_default_route(a.transport_address)
        a.send_to_peer(msg(a, c))
        sim.run()  # terminates

    def test_route_to_self_delivers_locally_without_network(self):
        sim, net, (a, _, _) = build_peers()
        got = []
        a.add_listener("svc", "p", got.append)
        before = net.stats.messages_sent
        a.send_to_peer(msg(a, a))
        sim.run()
        assert len(got) == 1
        assert net.stats.messages_sent == before

    def test_reverse_route_learning(self):
        sim, _, (a, b, _) = build_peers()
        b.add_listener("svc", "p", lambda m: None)
        a.router.add_route(b.peer_id, [b.transport_address])
        a.send_to_peer(msg(a, b))
        sim.run()
        assert b.router.resolve(a.peer_id) == [a.transport_address]

    def test_reverse_learning_does_not_clobber_multihop_route(self):
        sim, _, (a, b, c) = build_peers()
        b.add_listener("svc", "p", lambda m: None)
        b.router.add_route(a.peer_id, [c.transport_address, a.transport_address])
        a.router.add_route(b.peer_id, [b.transport_address])
        a.send_to_peer(msg(a, b))
        sim.run()
        assert b.router.resolve(a.peer_id) == [
            c.transport_address, a.transport_address,
        ]

    def test_empty_route_rejected(self):
        _, _, (a, b, _) = build_peers()
        with pytest.raises(ValueError):
            a.router.add_route(b.peer_id, [])

    def test_remove_route(self):
        _, _, (a, b, _) = build_peers()
        a.router.add_route(b.peer_id, [b.transport_address])
        a.router.remove_route(b.peer_id)
        assert not a.router.has_route(b.peer_id)
