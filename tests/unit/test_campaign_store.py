"""Unit tests for the crash-safe JSONL run store."""

import json

from repro.campaign.store import RunStore


def record(key, status="ok", **extra):
    return {"key": key, "status": status, "params": {"seed": 1},
            "result": {"x": 1.0}, **extra}


class TestAppendAndLoad:
    def test_round_trip(self, tmp_path):
        store = RunStore(tmp_path / "run")
        store.append(record("a"))
        store.append(record("b"))
        assert [r["key"] for r in store.records()] == ["a", "b"]

    def test_empty_store(self, tmp_path):
        store = RunStore(tmp_path / "run")
        assert store.records() == []
        assert store.completed() == {}

    def test_completed_filters_status(self, tmp_path):
        store = RunStore(tmp_path / "run")
        store.append(record("a"))
        store.append(record("b", status="error"))
        assert set(store.completed()) == {"a"}

    def test_last_record_wins(self, tmp_path):
        """A retry that succeeds supersedes the earlier failure."""
        store = RunStore(tmp_path / "run")
        store.append(record("a", status="crashed"))
        store.append(record("a", status="ok"))
        assert set(store.completed()) == {"a"}
        # and in reverse: a later failure hides the task again
        store.append(record("a", status="timeout"))
        assert store.completed() == {}


class TestCrashTolerance:
    def test_torn_trailing_line_is_skipped(self, tmp_path):
        store = RunStore(tmp_path / "run")
        store.append(record("a"))
        with open(store.tasks_path, "a") as fh:
            fh.write('{"key": "b", "status": "ok", "resu')  # SIGKILL here
        assert [r["key"] for r in store.records()] == ["a"]
        assert set(store.completed()) == {"a"}

    def test_append_after_torn_line_heals(self, tmp_path):
        """Re-opening the store after a crash terminates the fragment,
        so the next append cannot be glued onto it."""
        store = RunStore(tmp_path / "run")
        store.append(record("a"))
        with open(store.tasks_path, "a") as fh:
            fh.write('{"key": "b", "status": "ok", "resu')
        resumed = RunStore(store.root)  # what --resume does
        resumed.append(record("c"))
        assert [r["key"] for r in resumed.records()] == ["a", "c"]

    def test_multiple_crash_fragments_tolerated(self, tmp_path):
        """One torn fragment per killed run: each is healed onto its own
        line and skipped by the loader."""
        store = RunStore(tmp_path / "run")
        for i, fragment in enumerate(['{"key": "x1"', '{"ke']):
            with open(store.tasks_path, "a") as fh:
                fh.write(fragment)
            store = RunStore(store.root)
            store.append(record(f"ok{i}"))
        assert [r["key"] for r in store.records()] == ["ok0", "ok1"]
        assert set(store.completed()) == {"ok0", "ok1"}

    def test_parseable_non_record_lines_skipped(self, tmp_path):
        store = RunStore(tmp_path / "run")
        with open(store.tasks_path, "a") as fh:
            fh.write('{"no_key": 1}\n[1, 2]\n')
        store.append(record("a"))
        assert [r["key"] for r in store.records()] == ["a"]


class TestRotation:
    def test_rotate_moves_existing_runs_aside(self, tmp_path):
        store = RunStore(tmp_path / "run")
        assert store.rotate() is None
        store.append(record("a"))
        first = store.rotate()
        assert first is not None and first.exists()
        assert store.records() == []
        store.append(record("b"))
        second = store.rotate()
        assert second != first and second.exists()


class TestManifest:
    def test_round_trip(self, tmp_path):
        store = RunStore(tmp_path / "run")
        assert store.read_manifest() is None
        store.write_manifest({"jobs": 4, "wall_seconds": 1.5})
        assert store.read_manifest() == {"jobs": 4, "wall_seconds": 1.5}

    def test_atomic_replace(self, tmp_path):
        store = RunStore(tmp_path / "run")
        store.write_manifest({"v": 1})
        store.write_manifest({"v": 2})
        assert store.read_manifest() == {"v": 2}
        assert not store.manifest_path.with_suffix(".json.tmp").exists()

    def test_canonical_lines(self, tmp_path):
        """Records serialize with sorted keys — the byte-identical
        aggregate guarantee starts here."""
        store = RunStore(tmp_path / "run")
        store.append({"key": "a", "status": "ok", "b": 1, "a": 2})
        line = store.tasks_path.read_text().strip()
        assert line == json.dumps(
            {"a": 2, "b": 1, "key": "a", "status": "ok"},
            sort_keys=True, separators=(",", ":"),
        )
