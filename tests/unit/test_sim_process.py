"""Unit tests for Process and PeriodicTask."""

import pytest

from repro.sim import PeriodicTask, Process, SchedulingError, Simulator


class TestProcess:
    def test_start_stop_lifecycle(self):
        sim = Simulator()
        p = Process(sim, "p")
        assert not p.started
        p.start()
        assert p.started
        p.stop()
        assert not p.started

    def test_double_start_rejected(self):
        sim = Simulator()
        p = Process(sim)
        p.start()
        with pytest.raises(SchedulingError):
            p.start()

    def test_stop_when_not_started_is_noop(self):
        sim = Simulator()
        Process(sim).stop()  # must not raise

    def test_hooks_called(self):
        sim = Simulator()
        calls = []

        class P(Process):
            def on_start(self):
                calls.append("start")

            def on_stop(self):
                calls.append("stop")

        p = P(sim)
        p.start()
        p.stop()
        assert calls == ["start", "stop"]


class TestPeriodicTask:
    def test_ticks_at_interval(self):
        sim = Simulator()
        times = []
        task = PeriodicTask(sim, 30.0, lambda: times.append(sim.now))
        task.start()
        sim.run(until=100.0)
        assert times == [30.0, 60.0, 90.0]
        assert task.ticks == 3

    def test_immediate_first_tick(self):
        sim = Simulator()
        times = []
        task = PeriodicTask(sim, 30.0, lambda: times.append(sim.now), immediate=True)
        task.start()
        sim.run(until=70.0)
        assert times == [0.0, 30.0, 60.0]

    def test_stop_halts_ticking(self):
        sim = Simulator()
        times = []
        task = PeriodicTask(sim, 10.0, lambda: times.append(sim.now))
        task.start()
        sim.run(until=25.0)
        task.stop()
        sim.run(until=100.0)
        assert times == [10.0, 20.0]

    def test_start_jitter_is_deterministic_and_bounded(self):
        def first_tick(seed):
            sim = Simulator(seed=seed)
            times = []
            t = PeriodicTask(
                sim, 30.0, lambda: times.append(sim.now), name="pv", start_jitter=5.0
            )
            t.start()
            sim.run(until=40.0)
            return times[0]

        a, b = first_tick(1), first_tick(1)
        assert a == b
        assert 30.0 <= a < 35.0
        assert first_tick(1) != first_tick(2)

    def test_invalid_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicTask(sim, 0.0, lambda: None)
        with pytest.raises(ValueError):
            PeriodicTask(sim, -1.0, lambda: None)

    def test_negative_jitter_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicTask(sim, 1.0, lambda: None, start_jitter=-1.0)

    def test_reschedule_moves_next_tick(self):
        sim = Simulator()
        times = []
        task = PeriodicTask(sim, 30.0, lambda: times.append(sim.now))
        task.start()
        sim.run(until=10.0)
        task.reschedule(5.0)  # next tick at t=15 instead of t=30
        sim.run(until=50.0)
        assert times == [15.0, 45.0]

    def test_reschedule_requires_running(self):
        sim = Simulator()
        task = PeriodicTask(sim, 30.0, lambda: None)
        with pytest.raises(SchedulingError):
            task.reschedule()

    def test_callback_exception_propagates(self):
        sim = Simulator()

        def boom():
            raise RuntimeError("boom")

        task = PeriodicTask(sim, 1.0, boom)
        task.start()
        with pytest.raises(RuntimeError):
            sim.run(until=2.0)
