"""Unit tests for the PeerView data structure."""

import random

import pytest

from repro.advertisement.rdvadv import RdvAdvertisement
from repro.ids import NET_PEER_GROUP_ID, PeerID
from repro.rendezvous.peerview import PeerView


def pid(n):
    return PeerID.from_int(NET_PEER_GROUP_ID, n)


def adv(n, name=""):
    return RdvAdvertisement(
        rdv_peer_id=pid(n),
        group_id=NET_PEER_GROUP_ID,
        name=name or f"rdv-{n}",
        route_hint=f"tcp://host-{n}:9701",
    )


@pytest.fixture
def view():
    # local peer has ID 50, so upper/lower neighbors exist around it
    return PeerView(adv(50))


class TestUpsert:
    def test_add_returns_added(self, view):
        assert view.upsert(adv(10), now=0.0) == "added"
        assert view.size == 1

    def test_refresh_returns_refreshed(self, view):
        view.upsert(adv(10), now=0.0)
        assert view.upsert(adv(10), now=5.0) == "refreshed"
        assert view.size == 1
        assert view.get(pid(10)).last_refreshed == 5.0

    def test_self_is_ignored(self, view):
        assert view.upsert(adv(50), now=0.0) == "self"
        assert view.size == 0

    def test_refresh_updates_advertisement(self, view):
        view.upsert(adv(10), now=0.0)
        newer = adv(10, name="renamed")
        view.upsert(newer, now=1.0)
        assert view.get(pid(10)).adv.name == "renamed"


class TestSizeSemantics:
    def test_size_excludes_self_member_count_includes(self, view):
        # paper footnote 2: l excludes the local rendezvous;
        # the ReplicaPeer rank list includes it (Table 1)
        view.upsert(adv(10), now=0.0)
        view.upsert(adv(90), now=0.0)
        assert view.size == 2
        assert view.member_count() == 3

    def test_contains_self(self, view):
        assert pid(50) in view

    def test_ordered_ids_sorted_with_self(self, view):
        for n in (88, 6, 180, 20, 36):
            view.upsert(adv(n), now=0.0)
        order = [int.from_bytes(p.unique_value, "big") for p in view.ordered_ids()]
        assert order == [6, 20, 36, 50, 88, 180]


class TestExpiry:
    def test_expire_removes_stale_entries(self, view):
        view.upsert(adv(10), now=0.0)
        view.upsert(adv(20), now=100.0)
        dead = view.expire(now=1201.0, pve_expiration=1200.0)
        assert dead == [pid(10)]
        assert view.size == 1

    def test_refresh_prevents_expiry(self, view):
        view.upsert(adv(10), now=0.0)
        view.upsert(adv(10), now=600.0)
        assert view.expire(now=1201.0, pve_expiration=1200.0) == []

    def test_entry_exactly_at_expiration_survives(self, view):
        # Algorithm 1 line 3 removes entries with age strictly greater
        view.upsert(adv(10), now=0.0)
        assert view.expire(now=1200.0, pve_expiration=1200.0) == []


class TestRemove:
    def test_remove_present(self, view):
        view.upsert(adv(10), now=0.0)
        assert view.remove(pid(10), now=1.0)
        assert view.size == 0
        assert view.removes == 1

    def test_remove_absent_returns_false(self, view):
        assert not view.remove(pid(10), now=1.0)


class TestNeighbors:
    def test_upper_and_lower(self, view):
        for n in (10, 40, 60, 90):
            view.upsert(adv(n), now=0.0)
        assert view.lower_neighbor() == pid(40)
        assert view.upper_neighbor() == pid(60)

    def test_at_bottom_of_list(self):
        v = PeerView(adv(1))
        v.upsert(adv(10), now=0.0)
        assert v.lower_neighbor() is None
        assert v.upper_neighbor() == pid(10)

    def test_at_top_of_list(self):
        v = PeerView(adv(100))
        v.upsert(adv(10), now=0.0)
        assert v.upper_neighbor() is None
        assert v.lower_neighbor() == pid(10)

    def test_alone(self, view):
        assert view.upper_neighbor() is None
        assert view.lower_neighbor() is None

    def test_neighbor_of_directional(self, view):
        for n in (10, 40, 60):
            view.upsert(adv(n), now=0.0)
        assert view.neighbor_of(pid(40), +1) == pid(50)
        assert view.neighbor_of(pid(40), -1) == pid(10)
        assert view.neighbor_of(pid(10), -1) is None
        assert view.neighbor_of(pid(60), +1) is None

    def test_neighbor_of_unknown_peer(self, view):
        assert view.neighbor_of(pid(99), +1) is None

    def test_neighbor_of_bad_direction(self, view):
        with pytest.raises(ValueError):
            view.neighbor_of(pid(50), 0)


class TestRanks:
    def test_table1_ranks(self):
        # Table 1 of the paper: peers 006..180 at ranks 0..5
        v = PeerView(adv(6))
        for n in (20, 36, 50, 88, 180):
            v.upsert(adv(n), now=0.0)
        assert v.id_at(0) == pid(6)
        assert v.id_at(3) == pid(50)
        assert v.id_at(5) == pid(180)
        assert v.rank_of(pid(88)) == 4

    def test_rank_of_absent(self, view):
        assert view.rank_of(pid(7)) is None


class TestReferral:
    def test_excludes_self_and_prober(self, view):
        view.upsert(adv(10), now=0.0)
        view.upsert(adv(20), now=0.0)
        rng = random.Random(0)
        for _ in range(50):
            entry = view.random_referral(rng, exclude=(pid(10),))
            assert entry.peer_id == pid(20)

    def test_no_candidates_returns_none(self, view):
        view.upsert(adv(10), now=0.0)
        assert view.random_referral(random.Random(0), exclude=(pid(10),)) is None

    def test_uniformity(self, view):
        for n in (10, 20, 30):
            view.upsert(adv(n), now=0.0)
        rng = random.Random(0)
        counts = {}
        for _ in range(3000):
            entry = view.random_referral(rng)
            counts[entry.peer_id] = counts.get(entry.peer_id, 0) + 1
        assert all(800 < c < 1200 for c in counts.values())


class TestListeners:
    def test_add_and_remove_events(self, view):
        events = []
        view.add_listener(events.append)
        view.upsert(adv(10), now=1.0)
        view.upsert(adv(10), now=2.0)  # refresh: no event
        view.remove(pid(10), now=3.0, reason="expired")
        assert [(e.kind, e.time) for e in events] == [("add", 1.0), ("remove", 3.0)]
        assert events[1].reason == "expired"


class TestProperty2:
    def test_complete_view(self, view):
        for n in (10, 20):
            view.upsert(adv(n), now=0.0)
        assert view.is_complete(2)
        assert not view.is_complete(3)
