"""Unit tests for the content-addressed checkpoint store."""

import pickle

import pytest

import repro.snapshot.store as store_mod
from repro.snapshot import CheckpointStore, checkpoint_key


SPEC = {"experiment": "unit", "r": 8, "seed": 1, "warmup": 120.0}


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(tmp_path / "ckpts")


class TestKey:
    def test_key_is_stable_and_order_insensitive(self):
        reordered = dict(reversed(list(SPEC.items())))
        assert checkpoint_key(SPEC) == checkpoint_key(reordered)
        assert len(checkpoint_key(SPEC)) == 64

    def test_any_spec_change_changes_the_key(self):
        assert checkpoint_key(SPEC) != checkpoint_key({**SPEC, "seed": 2})
        assert checkpoint_key(SPEC) != checkpoint_key({**SPEC, "warmup": 121.0})

    def test_snapshot_version_folds_into_key(self, monkeypatch):
        before = checkpoint_key(SPEC)
        monkeypatch.setattr(store_mod, "SNAPSHOT_VERSION", 999)
        assert checkpoint_key(SPEC) != before


class TestHitMiss:
    def test_get_on_empty_store_is_a_miss(self, store):
        assert store.get(SPEC) is None
        assert store.counters() == {
            "hits": 0, "misses": 1, "build_seconds": 0.0,
        }

    def test_put_then_get_round_trips(self, store):
        blob = pickle.dumps({"state": list(range(100))})
        store.put(SPEC, blob)
        assert store.get(SPEC) == blob
        assert store.hits == 1

    def test_load_or_build_builds_once_then_hits(self, store):
        calls = []

        def build():
            calls.append(1)
            return b"payload"

        blob, hit = store.load_or_build(SPEC, build)
        assert (blob, hit) == (b"payload", False)
        blob, hit = store.load_or_build(SPEC, build)
        assert (blob, hit) == (b"payload", True)
        assert len(calls) == 1
        assert store.build_seconds > 0.0

    def test_different_specs_do_not_collide(self, store):
        store.put(SPEC, b"a")
        store.put({**SPEC, "r": 16}, b"b")
        assert store.get(SPEC) == b"a"
        assert store.get({**SPEC, "r": 16}) == b"b"


class TestAtomicityAndLayout:
    def test_blob_lands_under_two_hex_fanout(self, store):
        path = store.put(SPEC, b"x")
        key = checkpoint_key(SPEC)
        assert path == store.root / key[:2] / f"{key}.ckpt"
        assert path.exists()

    def test_no_tmp_files_left_behind(self, store):
        store.put(SPEC, b"x" * 4096)
        leftovers = [
            p for p in store.root.rglob("*") if p.suffix == ".tmp"
        ]
        assert leftovers == []

    def test_overwrite_is_atomic_replace(self, store):
        store.put(SPEC, b"old")
        store.put(SPEC, b"new")
        assert store.get(SPEC) == b"new"


class TestCorruption:
    def _corrupt(self, store, mutate):
        path = store.put(SPEC, b"payload-bytes")
        raw = bytearray(path.read_bytes())
        path.write_bytes(bytes(mutate(raw)))
        return path

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda raw: raw[: len(raw) // 2],          # truncated
            lambda raw: b"garbage" + bytes(raw),       # bad magic
            lambda raw: raw[:-1] + bytes([raw[-1] ^ 1]),  # payload flip
        ],
        ids=["truncated", "bad-magic", "bitflip"],
    )
    def test_corrupt_blob_is_quarantined_miss(self, store, mutate):
        path = self._corrupt(store, mutate)
        assert store.get(SPEC) is None
        assert store.misses == 1
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()

    def test_store_heals_after_corruption(self, store):
        self._corrupt(store, lambda raw: raw[:20])
        blob, hit = store.load_or_build(SPEC, lambda: b"rebuilt")
        assert (blob, hit) == (b"rebuilt", False)
        assert store.get(SPEC) == b"rebuilt"

    def test_future_format_version_reads_as_miss(self, store):
        path = store.put(SPEC, b"payload")
        raw = bytearray(path.read_bytes())
        raw[8:12] = (99).to_bytes(4, "big")
        path.write_bytes(bytes(raw))
        assert store.get(SPEC) is None
