"""Unit tests for churn models and the churn process."""

import random

import pytest

from repro.network.churn import (
    ChurnProcess,
    ExponentialChurn,
    ParetoChurn,
)
from repro.sim import Simulator


class TestExponentialChurn:
    def test_mean_session_approximately_respected(self):
        m = ExponentialChurn(mean_session=100.0, mean_downtime=10.0)
        rng = random.Random(0)
        draws = [m.session_length(rng) for _ in range(5000)]
        assert 90 < sum(draws) / len(draws) < 110

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ExponentialChurn(0.0, 1.0)
        with pytest.raises(ValueError):
            ExponentialChurn(1.0, -1.0)


class TestParetoChurn:
    def test_median_session_approximately_respected(self):
        m = ParetoChurn(median_session=60.0, mean_downtime=10.0)
        rng = random.Random(0)
        draws = sorted(m.session_length(rng) for _ in range(5001))
        median = draws[len(draws) // 2]
        assert 50 < median < 72

    def test_draws_bounded_below_by_scale(self):
        m = ParetoChurn(median_session=60.0, mean_downtime=10.0, shape=2.0)
        rng = random.Random(1)
        assert all(m.session_length(rng) >= m.scale for _ in range(1000))

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            ParetoChurn(60.0, 10.0, shape=1.0)


class TestChurnProcess:
    def _run(self, horizon=1000.0):
        sim = Simulator(seed=3)
        events = []
        proc = ChurnProcess(
            sim,
            ExponentialChurn(mean_session=50.0, mean_downtime=20.0),
            targets=["p1", "p2", "p3"],
            on_kill=lambda t: events.append(("kill", t, sim.now)),
            on_revive=lambda t: events.append(("revive", t, sim.now)),
        )
        proc.start()
        sim.run(until=horizon)
        return proc, events

    def test_kills_and_revives_alternate_per_target(self):
        _, events = self._run()
        per_target = {}
        for kind, target, _ in events:
            per_target.setdefault(target, []).append(kind)
        for seq in per_target.values():
            for i, kind in enumerate(seq):
                assert kind == ("kill" if i % 2 == 0 else "revive")

    def test_counters_match_events(self):
        proc, events = self._run()
        kills = sum(1 for k, _, _ in events if k == "kill")
        revives = sum(1 for k, _, _ in events if k == "revive")
        assert proc.kill_count == kills
        assert proc.revive_count == revives
        assert kills > 0

    def test_stop_halts_churn(self):
        sim = Simulator(seed=3)
        events = []
        proc = ChurnProcess(
            sim,
            ExponentialChurn(mean_session=10.0, mean_downtime=10.0),
            targets=["p1"],
            on_kill=lambda t: events.append("kill"),
            on_revive=lambda t: events.append("revive"),
        )
        proc.start()
        sim.run(until=100.0)
        count = len(events)
        proc.stop()
        sim.run(until=1000.0)
        assert len(events) == count

    def test_deterministic_given_seed(self):
        _, e1 = self._run()
        _, e2 = self._run()
        assert e1 == e2


class TestChurnEdgeCases:
    def _proc(self, sim=None, targets=("p1", "p2")):
        sim = sim or Simulator(seed=7)
        events = []
        proc = ChurnProcess(
            sim,
            ExponentialChurn(mean_session=1e9, mean_downtime=1e9),
            targets=list(targets),
            on_kill=lambda t: events.append(("kill", t)),
            on_revive=lambda t: events.append(("revive", t)),
        )
        return sim, proc, events

    def test_zero_downtime_revival(self):
        # kill and revive at the same instant: the peer must come back
        # up with both transitions delivered, and the cycle continues
        sim, proc, events = self._proc()
        proc.start()
        sim.run(until=1.0)
        assert proc.kill_now("p1") is True
        assert proc.revive_now("p1") is True
        assert proc.is_up["p1"]
        assert events == [("kill", "p1"), ("revive", "p1")]
        assert (proc.kill_count, proc.revive_count) == (1, 1)

    def test_killing_already_dead_peer_is_noop(self):
        sim, proc, events = self._proc()
        proc.start()
        sim.run(until=1.0)
        assert proc.kill_now("p1") is True
        assert proc.kill_now("p1") is False
        assert events.count(("kill", "p1")) == 1
        assert proc.kill_count == 1

    def test_reviving_live_peer_is_noop(self):
        sim, proc, events = self._proc()
        proc.start()
        sim.run(until=1.0)
        assert proc.revive_now("p1") is False
        assert events == []
        assert proc.revive_count == 0

    def test_forced_transitions_require_started_process(self):
        _, proc, events = self._proc()
        assert proc.kill_now("p1") is False
        assert proc.revive_now("p1") is False
        assert events == []

    def test_unknown_target_rejected(self):
        sim, proc, _ = self._proc()
        proc.start()
        with pytest.raises(ValueError, match="unknown churn target"):
            proc.kill_now("ghost")
        with pytest.raises(ValueError, match="unknown churn target"):
            proc.revive_now("ghost")

    def test_empty_and_duplicate_targets_rejected(self):
        sim = Simulator(seed=7)
        model = ExponentialChurn(mean_session=10.0, mean_downtime=10.0)
        with pytest.raises(ValueError, match="at least one target"):
            ChurnProcess(sim, model, [], lambda t: None, lambda t: None)
        with pytest.raises(ValueError, match="duplicate"):
            ChurnProcess(
                sim, model, ["p1", "p1"], lambda t: None, lambda t: None
            )

    def test_distribution_param_validation(self):
        with pytest.raises(ValueError):
            ExponentialChurn(mean_session=-5.0, mean_downtime=10.0)
        with pytest.raises(ValueError):
            ExponentialChurn(mean_session=10.0, mean_downtime=0.0)
        with pytest.raises(ValueError):
            ParetoChurn(median_session=0.0, mean_downtime=10.0)
        with pytest.raises(ValueError):
            ParetoChurn(median_session=60.0, mean_downtime=10.0, shape=0.9)
