"""Unit tests for churn models and the churn process."""

import random

import pytest

from repro.network.churn import (
    ChurnProcess,
    ExponentialChurn,
    ParetoChurn,
)
from repro.sim import Simulator


class TestExponentialChurn:
    def test_mean_session_approximately_respected(self):
        m = ExponentialChurn(mean_session=100.0, mean_downtime=10.0)
        rng = random.Random(0)
        draws = [m.session_length(rng) for _ in range(5000)]
        assert 90 < sum(draws) / len(draws) < 110

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ExponentialChurn(0.0, 1.0)
        with pytest.raises(ValueError):
            ExponentialChurn(1.0, -1.0)


class TestParetoChurn:
    def test_median_session_approximately_respected(self):
        m = ParetoChurn(median_session=60.0, mean_downtime=10.0)
        rng = random.Random(0)
        draws = sorted(m.session_length(rng) for _ in range(5001))
        median = draws[len(draws) // 2]
        assert 50 < median < 72

    def test_draws_bounded_below_by_scale(self):
        m = ParetoChurn(median_session=60.0, mean_downtime=10.0, shape=2.0)
        rng = random.Random(1)
        assert all(m.session_length(rng) >= m.scale for _ in range(1000))

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            ParetoChurn(60.0, 10.0, shape=1.0)


class TestChurnProcess:
    def _run(self, horizon=1000.0):
        sim = Simulator(seed=3)
        events = []
        proc = ChurnProcess(
            sim,
            ExponentialChurn(mean_session=50.0, mean_downtime=20.0),
            targets=["p1", "p2", "p3"],
            on_kill=lambda t: events.append(("kill", t, sim.now)),
            on_revive=lambda t: events.append(("revive", t, sim.now)),
        )
        proc.start()
        sim.run(until=horizon)
        return proc, events

    def test_kills_and_revives_alternate_per_target(self):
        _, events = self._run()
        per_target = {}
        for kind, target, _ in events:
            per_target.setdefault(target, []).append(kind)
        for seq in per_target.values():
            for i, kind in enumerate(seq):
                assert kind == ("kill" if i % 2 == 0 else "revive")

    def test_counters_match_events(self):
        proc, events = self._run()
        kills = sum(1 for k, _, _ in events if k == "kill")
        revives = sum(1 for k, _, _ in events if k == "revive")
        assert proc.kill_count == kills
        assert proc.revive_count == revives
        assert kills > 0

    def test_stop_halts_churn(self):
        sim = Simulator(seed=3)
        events = []
        proc = ChurnProcess(
            sim,
            ExponentialChurn(mean_session=10.0, mean_downtime=10.0),
            targets=["p1"],
            on_kill=lambda t: events.append("kill"),
            on_revive=lambda t: events.append("revive"),
        )
        proc.start()
        sim.run(until=100.0)
        count = len(events)
        proc.stop()
        sim.run(until=1000.0)
        assert len(events) == count

    def test_deterministic_given_seed(self):
        _, e1 = self._run()
        _, e2 = self._run()
        assert e1 == e2
