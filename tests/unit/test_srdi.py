"""Unit tests for the SRDI index and pusher."""

import pytest

from repro.advertisement import AdvertisementCache, FakeAdvertisement
from repro.config import PlatformConfig
from repro.discovery.srdi import SrdiIndex, SrdiPayload, SrdiPusher
from repro.ids import NET_PEER_GROUP_ID, PeerID
from repro.sim import Simulator


def pid(n):
    return PeerID.from_int(NET_PEER_GROUP_ID, n)


T1 = ("repro:FakeAdvertisement", "Name", "alpha")
T2 = ("repro:FakeAdvertisement", "Name", "beta")


class TestSrdiIndex:
    def test_add_and_lookup(self):
        idx = SrdiIndex()
        idx.add(T1, pid(1), "tcp://a:1", now=0.0, expiration=100.0)
        records = idx.lookup(T1, now=50.0)
        assert len(records) == 1
        assert records[0].publisher == pid(1)
        assert records[0].publisher_address == "tcp://a:1"

    def test_expired_records_hidden(self):
        idx = SrdiIndex()
        idx.add(T1, pid(1), "tcp://a:1", now=0.0, expiration=100.0)
        assert idx.lookup(T1, now=100.0) == []

    def test_refresh_extends_expiry(self):
        idx = SrdiIndex()
        idx.add(T1, pid(1), "tcp://a:1", now=0.0, expiration=100.0)
        idx.add(T1, pid(1), "tcp://a:1", now=90.0, expiration=100.0)
        assert idx.lookup(T1, now=150.0)
        assert len(idx) == 1

    def test_multiple_publishers_per_tuple(self):
        idx = SrdiIndex()
        idx.add(T1, pid(1), "tcp://a:1", now=0.0, expiration=100.0)
        idx.add(T1, pid(2), "tcp://b:1", now=0.0, expiration=100.0)
        assert len(idx.lookup(T1, now=1.0)) == 2
        assert len(idx) == 2

    def test_remove_publisher(self):
        idx = SrdiIndex()
        idx.add(T1, pid(1), "tcp://a:1", now=0.0, expiration=100.0)
        idx.add(T2, pid(1), "tcp://a:1", now=0.0, expiration=100.0)
        idx.add(T1, pid(2), "tcp://b:1", now=0.0, expiration=100.0)
        assert idx.remove_publisher(pid(1)) == 2
        assert len(idx) == 1

    def test_purge_expired(self):
        idx = SrdiIndex()
        idx.add(T1, pid(1), "tcp://a:1", now=0.0, expiration=10.0)
        idx.add(T2, pid(2), "tcp://b:1", now=0.0, expiration=100.0)
        assert idx.purge_expired(now=50.0) == 1
        assert len(idx) == 1
        assert idx.tuples() == [T2]

    def test_bad_expiration_rejected(self):
        with pytest.raises(ValueError):
            SrdiIndex().add(T1, pid(1), "a", now=0.0, expiration=0.0)


class TestSrdiPayload:
    def test_size_scales_with_entries(self):
        small = SrdiPayload(entries=[(T1, 100.0)], publisher_address="a")
        big = SrdiPayload(
            entries=[(T1, 100.0)] * 20, publisher_address="a"
        )
        assert big.size_bytes() > small.size_bytes()


class TestSrdiGarbageCollection:
    def test_rdv_purges_expired_records_periodically(self):
        from repro.config import PlatformConfig
        from repro.deploy import OverlayDescription, build_overlay
        from repro.network import Network
        from repro.sim import MINUTES, Simulator

        sim = Simulator(seed=4)
        overlay = build_overlay(
            sim, Network(sim), PlatformConfig(),
            OverlayDescription(rendezvous_count=2, edge_count=1,
                               edge_attachment=[0]),
        )
        overlay.start()
        sim.run(until=5 * MINUTES)
        edge = overlay.edges[0]
        edge.discovery.publish(
            FakeAdvertisement("ephemeral"), expiration=3 * 60.0
        )
        sim.run(until=sim.now + 2 * 60.0)
        rdv = overlay.rendezvous[0]
        assert any(
            t == ("repro:FakeAdvertisement", "Name", "ephemeral")
            for t in rdv.discovery.srdi.tuples()
        )
        before = len(rdv.discovery.srdi)
        # past the record expiration + a GC cycle: record is gone
        sim.run(until=sim.now + 10 * 60.0)
        assert len(rdv.discovery.srdi) < before


class TestSrdiPusher:
    def _setup(self, interval=30.0):
        sim = Simulator(seed=1)
        cache = AdvertisementCache()
        config = PlatformConfig().with_overrides(
            srdi_push_interval=interval, startup_jitter=0.0
        )
        sent = []
        pusher = SrdiPusher(sim, cache, config, sent.append)
        return sim, cache, pusher, sent

    def test_pushes_new_tuples_at_interval(self):
        sim, cache, pusher, sent = self._setup()
        pusher.start()
        cache.publish(FakeAdvertisement("alpha"), now=0.0)
        sim.run(until=31.0)
        assert len(sent) == 1
        tuples = [t for t, _ in sent[0].entries]
        assert T1 in tuples

    def test_no_change_no_push(self):
        sim, cache, pusher, sent = self._setup()
        pusher.start()
        cache.publish(FakeAdvertisement("alpha"), now=0.0)
        sim.run(until=200.0)
        assert len(sent) == 1  # pushed once, never again

    def test_new_advertisement_triggers_new_push(self):
        sim, cache, pusher, sent = self._setup()
        pusher.start()
        cache.publish(FakeAdvertisement("alpha"), now=0.0)
        sim.run(until=31.0)
        cache.publish(FakeAdvertisement("beta"), sim.now)
        sim.run(until=200.0)
        assert len(sent) == 2
        assert (T2, ) not in sent[0].entries

    def test_rendezvous_changed_republishes_everything(self):
        sim, cache, pusher, sent = self._setup()
        pusher.start()
        cache.publish(FakeAdvertisement("alpha"), now=0.0)
        sim.run(until=31.0)
        pusher.rendezvous_changed()
        assert len(sent) == 2
        assert [t for t, _ in sent[1].entries] == [T1]

    def test_remote_advertisements_not_pushed(self):
        sim, cache, pusher, sent = self._setup()
        pusher.start()
        cache.store_remote(FakeAdvertisement("alpha"), now=0.0, expiration=3600.0)
        sim.run(until=100.0)
        assert sent == []
