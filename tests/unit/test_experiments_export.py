"""Unit tests for the experiment result exporter."""

import json
from pathlib import Path

import pytest

from repro.experiments.export import _csv_cell, save_results
from repro.experiments.fig3_left import Fig3LeftSeries
from repro.experiments.fig3_right import Fig3RightResult
from repro.experiments.fig4_left import Fig4LeftResult
from repro.experiments.fig4_right import Fig4RightPoint
from repro.metrics.series import StepSeries


class TestCurveListExport:
    def test_fig3_left_csv(self, tmp_path):
        results = [
            Fig3LeftSeries(
                r=10, topology="chain",
                series=StepSeries([0.0, 120.0], [0.0, 9.0]),
                final_sizes=[9] * 10,
            ),
            Fig3LeftSeries(
                r=45, topology="chain",
                series=StepSeries([0.0, 240.0], [0.0, 44.0]),
                final_sizes=[44] * 45,
            ),
        ]
        written = save_results("fig3-left", results, tmp_path)
        assert written == [tmp_path / "fig3-left.csv"]
        lines = written[0].read_text().splitlines()
        assert lines[0] == "t_seconds,10-chain,45-chain"
        assert len(lines) > 2


class TestFig4LeftExport:
    def test_two_column_csv(self, tmp_path):
        result = Fig4LeftResult(
            r=50, duration=600.0,
            default_series=StepSeries([0.0, 300.0], [0.0, 49.0]),
            tuned_series=StepSeries([0.0, 300.0], [0.0, 49.0]),
            tuned_expiration=5400.0,
        )
        written = save_results("fig4-left", result, tmp_path)
        lines = written[0].read_text().splitlines()
        assert lines[0] == "t_seconds,default,tuned"


class TestScatterExport:
    def test_fig3_right_rows(self, tmp_path):
        result = Fig3RightResult(
            r=10, duration=600.0, pve_expiration=1200.0,
            add_points=[(1.0, 1), (2.0, 2)],
            remove_points=[(500.0, 1)],
        )
        written = save_results("fig3-right", result, tmp_path)
        lines = written[0].read_text().splitlines()
        assert lines[0] == "time,rendezvous_number,event"
        assert len(lines) == 4
        assert lines[-1].endswith("remove")


class TestPointListExport:
    def test_fig4_right_columns(self, tmp_path):
        points = [
            Fig4RightPoint(
                r=5, configuration="A", mean_ms=12.8, success=1.0,
                samples=[], total_walk_steps=0,
            )
        ]
        written = save_results("fig4-right", points, tmp_path)
        lines = written[0].read_text().splitlines()
        assert lines[0] == "r,configuration,mean_ms,success,total_walk_steps"
        assert lines[1].startswith("5,A,12.8")


class TestCsvCell:
    """Direct coverage of the cell-reduction rules."""

    def test_scalars_pass_through(self):
        assert _csv_cell(3) == 3
        assert _csv_cell(2.5) == 2.5
        assert _csv_cell("x") == "x"
        assert _csv_cell(None) is None

    def test_nested_dataclass_reduces_to_name(self):
        import dataclasses

        @dataclasses.dataclass
        class Scenario:
            name: str
            intensity: float

        assert _csv_cell(Scenario(name="loss-10", intensity=0.1)) == "loss-10"

    def test_nameless_dataclass_falls_back_to_str(self):
        import dataclasses

        @dataclasses.dataclass
        class Point:
            x: int

        assert _csv_cell(Point(x=1)) == str(Point(x=1))

    def test_dataclass_type_not_reduced(self):
        """A dataclass *class* (not instance) is passed through."""
        import dataclasses

        @dataclasses.dataclass
        class Point:
            x: int

        assert _csv_cell(Point) is Point

    def test_dict_becomes_sorted_compact_json(self):
        cell = _csv_cell({"b": 2, "a": 1})
        assert cell == '{"a": 1, "b": 2}'
        assert json.loads(cell) == {"a": 1, "b": 2}

    def test_dict_cell_round_trips_through_csv(self, tmp_path):
        import dataclasses

        @dataclasses.dataclass
        class Row:
            r: int
            extras: dict

        written = save_results(
            "dictcell", [Row(r=1, extras={"k": "v"})], tmp_path
        )
        lines = written[0].read_text().splitlines()
        assert lines[0] == "r,extras"
        assert '""k"": ""v""' in lines[1]  # csv-quoted JSON payload


class TestFallbackJson:
    def test_unknown_shape_becomes_json(self, tmp_path):
        written = save_results("misc", {"a": 1}, tmp_path)
        assert written == [tmp_path / "misc.json"]
        assert json.loads(written[0].read_text()) == {"a": 1}

    def test_single_dataclass_keeps_json_safe_fields_only(self, tmp_path):
        import dataclasses

        @dataclasses.dataclass
        class Result:
            r: int
            label: str
            ok: bool
            ratio: float
            tags: list
            meta: dict
            series: object = None  # not JSON-serializable -> dropped

        result = Result(
            r=5, label="x", ok=True, ratio=0.5,
            tags=[1, 2], meta={"k": 1}, series=object(),
        )
        written = save_results("single", result, tmp_path)
        assert written == [tmp_path / "single.json"]
        data = json.loads(written[0].read_text())
        assert data == {
            "r": 5, "label": "x", "ok": True, "ratio": 0.5,
            "tags": [1, 2], "meta": {"k": 1},
        }

    def test_non_serializable_leaf_becomes_str(self, tmp_path):
        written = save_results("weird", {"path": Path("/tmp/x")}, tmp_path)
        data = json.loads(written[0].read_text())
        assert data == {"path": "/tmp/x"}

    def test_empty_list_falls_through_to_json(self, tmp_path):
        written = save_results("empty", [], tmp_path)
        assert written == [tmp_path / "empty.json"]
        assert json.loads(written[0].read_text()) == []
