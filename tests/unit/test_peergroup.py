"""Unit tests for peer assembly and the PeerGroup registry."""

import pytest

from repro.config import PlatformConfig
from repro.ids.jxtaid import NET_PEER_GROUP_ID
from repro.network import Network
from repro.network.site import place_nodes
from repro.peergroup import PeerGroup
from repro.sim import MINUTES, Simulator


@pytest.fixture
def group():
    sim = Simulator(seed=4)
    network = Network(sim)
    return PeerGroup(sim, network, PlatformConfig())


class TestConstruction:
    def test_rendezvous_assembly(self, group):
        node = place_nodes(1)[0]
        rdv = group.create_rendezvous(node)
        assert rdv.is_rendezvous
        assert rdv.rdv_adv.route_hint == rdv.address
        assert rdv.view.local_peer_id == rdv.peer_id
        assert rdv.discovery.is_rendezvous
        assert group.r == 1

    def test_edge_assembly(self, group):
        nodes = place_nodes(2)
        rdv = group.create_rendezvous(nodes[0])
        edge = group.create_edge(nodes[1], seeds=[rdv.address])
        assert not edge.is_rendezvous
        assert edge.config.seeds == [rdv.address]
        assert not edge.discovery.is_rendezvous
        assert group.e == 1

    def test_port_allocation_per_node(self, group):
        node = place_nodes(1)[0]
        a = group.create_rendezvous(node)
        b = group.create_rendezvous(node)
        assert a.address != b.address

    def test_peer_registry(self, group):
        node = place_nodes(1)[0]
        rdv = group.create_rendezvous(node)
        assert group.peer(rdv.peer_id) is rdv

    def test_names_sequence(self, group):
        nodes = place_nodes(3)
        r0 = group.create_rendezvous(nodes[0])
        r1 = group.create_rendezvous(nodes[1])
        assert (r0.name, r1.name) == ("rdv-0", "rdv-1")

    def test_custom_peer_id(self, group):
        from repro.ids.jxtaid import PeerID

        node = place_nodes(1)[0]
        pid = PeerID.from_int(NET_PEER_GROUP_ID, 77)
        rdv = group.create_rendezvous(node, peer_id=pid)
        assert rdv.peer_id == pid


class TestLifecycle:
    def test_double_start_rejected(self, group):
        node = place_nodes(1)[0]
        rdv = group.create_rendezvous(node)
        rdv.start()
        with pytest.raises(RuntimeError):
            rdv.start()

    def test_stop_before_start_is_noop(self, group):
        node = place_nodes(1)[0]
        group.create_rendezvous(node).stop()

    def test_peer_advertisement(self, group):
        node = place_nodes(1)[0]
        rdv = group.create_rendezvous(node, name="my-rdv")
        adv = rdv.peer_advertisement()
        assert adv.peer_id == rdv.peer_id
        assert adv.name == "my-rdv"


class TestObservables:
    def test_empty_group_property2_trivially_true(self, group):
        assert group.property_2_satisfied()
        assert group.peerview_sizes() == []
        assert group.global_peerview_target() == 0

    def test_stopped_peers_excluded_from_target(self, group):
        nodes = place_nodes(3)
        rdvs = [group.create_rendezvous(n) for n in nodes]
        group.start_all()
        group.sim.run(until=10 * MINUTES)
        assert group.global_peerview_target() == 2
        rdvs[0].stop()
        assert group.global_peerview_target() == 1
        assert len(group.peerview_sizes()) == 2
