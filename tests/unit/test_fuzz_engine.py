"""Unit tests for the fuzz engine, corpus merge, shrinker and CLI."""

import json

import pytest

from repro.fuzz import (
    CorpusEntry,
    FuzzCase,
    load_corpus,
    merge_entries,
    save_corpus,
    shrink_case,
)
from repro.fuzz.cli import fuzz_main
from repro.fuzz.corpus import entry_from_dict, entry_to_dict
from repro.fuzz.engine import (
    FuzzEngine,
    batch_seed,
    merge_reports,
    run_batch,
)

CHEAP = ("invariants",)


# ---------------------------------------------------------------------------
# engine determinism
# ---------------------------------------------------------------------------

def test_same_seed_same_digest():
    r1 = FuzzEngine(seed=5, oracles=CHEAP).run(8)
    r2 = FuzzEngine(seed=5, oracles=CHEAP).run(8)
    assert r1.digest() == r2.digest()
    assert [entry_to_dict(e) for e in r1.entries] == [
        entry_to_dict(e) for e in r2.entries
    ]
    assert r1.coverage == r2.coverage


def test_different_seeds_diverge_after_seed_cases():
    # the first genomes are the fixed SEED_CASES, so divergence only
    # shows once the rng-driven tail differs
    r1 = FuzzEngine(seed=1, oracles=CHEAP).run(8)
    r2 = FuzzEngine(seed=2, oracles=CHEAP).run(8)
    assert r1.executed == r2.executed == 8


def test_batch_seed_derivation_is_stable():
    assert batch_seed(0, 0) == batch_seed(0, 0)
    assert batch_seed(0, 0) != batch_seed(0, 1)
    assert batch_seed(0, 0) != batch_seed(1, 0)


def test_run_batch_record_round_trips():
    rec = run_batch(
        {"master_seed": 0, "batch": 0, "batch_size": 5,
         "oracles": CHEAP}
    )
    assert rec["executed"] == 5
    assert rec["digest"]
    json.dumps(rec)  # JSON-serializable for the campaign store


def test_merge_reports_is_order_independent():
    reports = [
        FuzzEngine(seed=batch_seed(0, i), oracles=CHEAP).run(5)
        for i in range(3)
    ]
    forward = merge_reports(reports, seed=0)
    backward = merge_reports(list(reversed(reports)), seed=0)
    assert forward.digest() == backward.digest()
    assert forward.executed == 15


# ---------------------------------------------------------------------------
# corpus persistence and merge
# ---------------------------------------------------------------------------

def _entry(seed, kind="coverage", signature="", actions=(), **kw):
    return CorpusEntry(
        case=FuzzCase(seed=seed, actions=tuple(actions)),
        kind=kind,
        signature=signature,
        **kw,
    )


def test_entry_requires_signature_for_failures():
    with pytest.raises(ValueError):
        _entry(1, kind="failure")
    with pytest.raises(ValueError):
        _entry(1, kind="bogus")


def test_save_load_round_trip(tmp_path):
    entries = [
        _entry(1, new_keys=("metric:counters.x",)),
        _entry(2, kind="failure", signature="invariants:x"),
    ]
    path = tmp_path / "corpus.jsonl"
    assert save_corpus(path, entries) == 2
    loaded = load_corpus(path)
    assert [entry_to_dict(e) for e in loaded] == [
        entry_to_dict(e) for e in sorted(
            entries, key=lambda e: (e.kind, e.signature)
        )
    ]


def test_merge_dedups_and_keeps_smallest_reproducer():
    crash = {"kind": "crash", "at": 60.0, "peer": 1}
    big = _entry(
        1, kind="failure", signature="invariants:x",
        actions=[crash, dict(crash, peer=2)],
    )
    small = _entry(
        1, kind="failure", signature="invariants:x", actions=[crash]
    )
    cov = _entry(3, new_keys=("a",))
    cov_dup = _entry(3, new_keys=("b",))
    m1 = merge_entries([big, cov], [small, cov_dup])
    m2 = merge_entries([small, cov_dup], [big, cov])
    assert [entry_to_dict(e) for e in m1] == [
        entry_to_dict(e) for e in m2
    ]
    failures = [e for e in m1 if e.kind == "failure"]
    assert len(failures) == 1
    assert len(failures[0].case.actions) == 1
    coverage = [e for e in m1 if e.kind == "coverage"]
    assert len(coverage) == 1
    assert coverage[0].new_keys == ("a", "b")


def test_entry_dict_round_trip():
    entry = _entry(
        4, kind="canary", signature="invariants:y",
        requires_canary=True, note="oracle=invariants",
    )
    assert entry_to_dict(entry_from_dict(entry_to_dict(entry))) == (
        entry_to_dict(entry)
    )


# ---------------------------------------------------------------------------
# shrinker (synthetic predicates: no simulation needed)
# ---------------------------------------------------------------------------

def _crash(at, peer):
    return {"kind": "crash", "at": at, "peer": peer}


def test_shrinker_drops_irrelevant_actions():
    case = FuzzCase(
        seed=2, duration=300.0,
        actions=tuple(_crash(60.0 + i, i) for i in range(8)),
    )

    def needs_peer_3(candidate):
        return any(a["peer"] == 3 for a in candidate.actions)

    result = shrink_case(case, needs_peer_3)
    assert result.improved
    assert needs_peer_3(result.case)
    assert len(result.case.actions) == 1


def test_shrinker_never_returns_passing_case():
    case = FuzzCase(seed=2, actions=(_crash(60.0, 1), _crash(70.0, 2)))

    def always_fails(candidate):
        return True

    result = shrink_case(case, always_fails)
    assert always_fails(result.case)
    assert len(result.case.actions) == 0  # everything was droppable


def test_shrinker_respects_probe_budget():
    case = FuzzCase(
        seed=2, duration=300.0,
        actions=tuple(_crash(60.0 + i, i) for i in range(10)),
    )
    calls = []

    def predicate(candidate):
        calls.append(1)
        return len(candidate.actions) >= 9

    result = shrink_case(case, predicate, max_probes=7)
    assert result.probes <= 7
    assert len(calls) <= 7
    assert len(result.case.actions) >= 9


def test_shrinker_merges_overlapping_windows():
    case = FuzzCase(
        seed=2, duration=300.0,
        actions=(
            {"kind": "loss", "at": 60.0, "duration": 50.0, "rate": 0.5},
            {"kind": "loss", "at": 90.0, "duration": 50.0, "rate": 0.5},
        ),
    )

    def needs_long_loss(candidate):
        spans = [
            (a["at"], a["at"] + a["duration"])
            for a in candidate.actions if a["kind"] == "loss"
        ]
        return bool(spans) and max(e for _, e in spans) - min(
            s for s, _ in spans
        ) >= 70.0

    result = shrink_case(case, needs_long_loss)
    assert len(result.case.actions) == 1
    assert needs_long_loss(result.case)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_writes_corpus_and_report(tmp_path, capsys):
    rc = fuzz_main(
        ["--seed", "0", "--budget", "5", "--batch-size", "5",
         "--oracles", "invariants", "--out", str(tmp_path)]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "# digest: " in out
    report = json.loads((tmp_path / "fuzz-report.json").read_text())
    assert report["executed"] == 5
    corpus = load_corpus(tmp_path / "fuzz-corpus.jsonl")
    assert len(corpus) == report["corpus_size"]


def test_cli_rejects_bad_flags(capsys):
    with pytest.raises(SystemExit):
        fuzz_main(["--budget", "0"])
    with pytest.raises(SystemExit):
        fuzz_main(["--oracles", "nonsense"])
    with pytest.raises(SystemExit):
        fuzz_main(["--jobs", "0"])


def test_cli_exit_code_signals_failures(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CANARY", "1")
    rc = fuzz_main(
        ["--seed", "0", "--budget", "2", "--batch-size", "2",
         "--oracles", "invariants", "--quiet", "--out", str(tmp_path)]
    )
    assert rc == 1
    corpus = load_corpus(tmp_path / "fuzz-corpus.jsonl")
    assert any(e.kind == "canary" for e in corpus)


def test_main_cli_delegates_fuzz(capsys):
    from repro.experiments.cli import main as cli_main

    rc = cli_main(
        ["fuzz", "--seed", "0", "--budget", "2", "--batch-size", "2",
         "--oracles", "invariants", "--quiet"]
    )
    assert rc == 0
    assert "# digest: " in capsys.readouterr().out
