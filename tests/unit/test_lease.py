"""Unit tests for the rendezvous lease protocol."""

import pytest

from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.network import Network
from repro.network.latency import ConstantLatency
from repro.sim import MINUTES, SECONDS, Simulator


def build(r=2, e=2, attachment=None, seed=1, **overrides):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.002))
    config = PlatformConfig().with_overrides(**overrides)
    overlay = build_overlay(
        sim, net, config,
        OverlayDescription(
            rendezvous_count=r, edge_count=e, edge_attachment=attachment
        ),
    )
    overlay.start()
    return sim, overlay


class TestLeaseGrant:
    def test_edges_connect_to_their_seed_rdv(self):
        sim, overlay = build(r=2, e=2, attachment=[0, 1])
        sim.run(until=1 * MINUTES)
        assert overlay.edges[0].lease_client.rdv_peer_id == overlay.rendezvous[0].peer_id
        assert overlay.edges[1].lease_client.rdv_peer_id == overlay.rendezvous[1].peer_id

    def test_rdv_tracks_its_edges(self):
        sim, overlay = build(r=1, e=3, attachment=[0, 0, 0])
        sim.run(until=1 * MINUTES)
        assert sorted(
            p.short() for p in overlay.rendezvous[0].lease_server.edges()
        ) == sorted(e.peer_id.short() for e in overlay.edges)

    def test_edge_default_route_is_rdv(self):
        sim, overlay = build(r=1, e=1)
        sim.run(until=1 * MINUTES)
        edge = overlay.edges[0]
        assert edge.router._default_route == overlay.rendezvous[0].address

    def test_on_connected_hook_fires(self):
        sim, overlay = build(r=1, e=1)
        sim.run(until=1 * MINUTES)
        assert overlay.edges[0].lease_client.connected


class TestRenewal:
    def test_lease_renews_before_expiry(self):
        sim, overlay = build(
            r=1, e=1, lease_duration=2 * MINUTES
        )
        sim.run(until=30 * MINUTES)
        server = overlay.rendezvous[0].lease_server
        assert server.renewals >= 10
        assert overlay.edges[0].lease_client.connected
        assert server.has_edge(overlay.edges[0].peer_id)

    def test_unrenewed_lease_expires(self):
        sim, overlay = build(r=1, e=1, lease_duration=2 * MINUTES)
        sim.run(until=1 * MINUTES)
        edge = overlay.edges[0]
        edge.crash()  # silent disappearance: no LeaseCancel
        sim.run(until=10 * MINUTES)
        assert not overlay.rendezvous[0].lease_server.has_edge(edge.peer_id)


class TestDisconnect:
    def test_graceful_stop_sends_cancel(self):
        sim, overlay = build(r=1, e=1)
        sim.run(until=1 * MINUTES)
        edge = overlay.edges[0]
        edge.stop()
        sim.run(until=2 * MINUTES)
        assert not overlay.rendezvous[0].lease_server.has_edge(edge.peer_id)

    def test_disconnected_hook_fires_on_cancel(self):
        sim, overlay = build(r=1, e=1)
        sim.run(until=1 * MINUTES)
        gone = []
        overlay.rendezvous[0].lease_server.on_edge_disconnected = gone.append
        overlay.edges[0].stop()
        sim.run(until=2 * MINUTES)
        assert gone == [overlay.edges[0].peer_id]


class TestFailover:
    def test_edge_fails_over_to_second_seed(self):
        sim = Simulator(seed=5)
        net = Network(sim, latency=ConstantLatency(0.002))
        config = PlatformConfig().with_overrides(
            lease_duration=2 * MINUTES, lease_request_timeout=10 * SECONDS
        )
        overlay = build_overlay(
            sim, net, config, OverlayDescription(rendezvous_count=2)
        )
        # one edge seeded to BOTH rendezvous, preferring rdv-0
        edge = overlay.group.create_edge(
            overlay.rendezvous[0].node,
            seeds=[overlay.rendezvous[0].address, overlay.rendezvous[1].address],
        )
        overlay.start()  # starts the edge too (group-registered)
        sim.run(until=1 * MINUTES)
        assert edge.lease_client.rdv_peer_id == overlay.rendezvous[0].peer_id
        overlay.rendezvous[0].crash()
        sim.run(until=10 * MINUTES)
        assert edge.lease_client.rdv_peer_id == overlay.rendezvous[1].peer_id

    def test_edge_requires_seeds(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        overlay = build_overlay(
            sim, net, PlatformConfig(), OverlayDescription(rendezvous_count=1)
        )
        with pytest.raises(ValueError):
            overlay.group.create_edge(overlay.rendezvous[0].node, seeds=[])
