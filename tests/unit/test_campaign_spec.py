"""Unit tests for campaign specs: grid expansion and content keys."""

import pytest

from repro.campaign.spec import (
    CampaignSpec,
    canonical_json,
    derive_seed,
    task_key,
)


class TestCanonicalJson:
    def test_key_order_is_canonical(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_compact(self):
        assert canonical_json({"a": [1, 2]}) == '{"a":[1,2]}'


class TestTaskKey:
    def test_stable_across_declaration_order(self):
        assert task_key("t", {"r": 10, "seed": 1}) == task_key(
            "t", {"seed": 1, "r": 10}
        )

    def test_distinguishes_params_and_type(self):
        base = task_key("t", {"r": 10})
        assert task_key("t", {"r": 11}) != base
        assert task_key("u", {"r": 10}) != base

    def test_shape(self):
        key = task_key("t", {"r": 10})
        assert len(key) == 16
        assert int(key, 16) >= 0


class TestExpansion:
    def spec(self):
        return CampaignSpec(
            name="demo",
            task_type="t",
            grid={"r": [10, 20], "seed": [1, 2, 3]},
            base={"duration": 60.0},
        )

    def test_cartesian_product(self):
        tasks = self.spec().expand()
        assert len(tasks) == 6
        assert {(t.params["r"], t.params["seed"]) for t in tasks} == {
            (r, s) for r in (10, 20) for s in (1, 2, 3)
        }

    def test_base_merged_into_every_task(self):
        assert all(t.params["duration"] == 60.0 for t in self.spec().expand())

    def test_deterministic_order_and_keys(self):
        a, b = self.spec().expand(), self.spec().expand()
        assert [t.key for t in a] == [t.key for t in b]

    def test_dict_axis_values_merge(self):
        spec = CampaignSpec(
            name="demo",
            task_type="t",
            grid={"config": [{"r": 10, "topology": "chain"}], "seed": [1]},
        )
        (task,) = spec.expand()
        assert task.params == {"r": 10, "topology": "chain", "seed": 1}
        assert "config" not in task.params

    def test_duplicate_tasks_rejected(self):
        spec = CampaignSpec(
            name="demo", task_type="t", grid={"r": [10, 10]}
        )
        with pytest.raises(ValueError, match="duplicate"):
            spec.expand()

    def test_empty_axis_rejected(self):
        spec = CampaignSpec(name="demo", task_type="t", grid={"r": []})
        with pytest.raises(ValueError, match="no values"):
            spec.expand()

    def test_label_is_compact(self):
        task = self.spec().expand()[0]
        assert task.label().startswith("t(")
        assert "r=10" in task.label()

    def test_seed_property(self):
        assert self.spec().expand()[0].seed in (1, 2, 3)


class TestSpecHash:
    def test_sensitive_to_grid_and_base(self):
        spec = CampaignSpec("n", "t", {"r": [1]}, base={"d": 1})
        assert spec.spec_hash() != CampaignSpec("n", "t", {"r": [2]}, {"d": 1}).spec_hash()
        assert spec.spec_hash() != CampaignSpec("n", "t", {"r": [1]}, {"d": 2}).spec_hash()
        assert spec.spec_hash() == CampaignSpec("n", "t", {"r": [1]}, {"d": 1}).spec_hash()


class TestDeriveSeed:
    def test_deterministic_and_positive(self):
        assert derive_seed(1, "abc") == derive_seed(1, "abc")
        assert derive_seed(1, "abc") != derive_seed(2, "abc")
        assert derive_seed(1, "abc") >= 1


class TestBuiltinCampaigns:
    def test_every_builtin_expands(self):
        from repro.campaign.builtin import CAMPAIGNS, build_campaign

        for name in CAMPAIGNS:
            spec = build_campaign(name, seeds=2)
            tasks = spec.expand()
            assert tasks, name
            assert len({t.key for t in tasks}) == len(tasks)

    def test_seed_axis(self):
        from repro.campaign.builtin import build_campaign

        spec = build_campaign("fig3", seeds=3, base_seed=7)
        seeds = {t.params["seed"] for t in spec.expand()}
        assert seeds == {7, 8, 9}

    def test_full_grid_is_paper_scale(self):
        from repro.campaign.builtin import build_campaign
        from repro.experiments.fig3_left import CI_CONFIGS, PAPER_CONFIGS

        assert len(build_campaign("fig3").expand()) == len(CI_CONFIGS)
        assert len(build_campaign("fig3", full=True).expand()) == len(PAPER_CONFIGS)

    def test_unknown_campaign(self):
        from repro.campaign.builtin import build_campaign

        with pytest.raises(KeyError, match="unknown campaign"):
            build_campaign("nope")
