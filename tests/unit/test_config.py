"""Unit tests for PlatformConfig."""

import pytest

from repro.config import PlatformConfig
from repro.sim import MINUTES, SECONDS


class TestDefaults:
    def test_paper_defaults(self):
        cfg = PlatformConfig()
        assert cfg.peerview_interval == 30 * SECONDS
        assert cfg.pve_expiration == 20 * MINUTES
        assert cfg.happy_size == 4
        assert cfg.srdi_push_interval == 30 * SECONDS

    def test_seeds_default_empty(self):
        assert PlatformConfig().seeds == []


class TestOverrides:
    def test_with_overrides(self):
        cfg = PlatformConfig().with_overrides(pve_expiration=90 * MINUTES)
        assert cfg.pve_expiration == 90 * MINUTES
        assert cfg.peerview_interval == 30 * SECONDS  # untouched

    def test_with_seeds_copies(self):
        seeds = ["tcp://a:1"]
        cfg = PlatformConfig().with_seeds(seeds)
        seeds.append("tcp://b:1")
        assert cfg.seeds == ["tcp://a:1"]

    def test_original_unchanged(self):
        base = PlatformConfig()
        base.with_overrides(happy_size=10)
        assert base.happy_size == 4

    def test_frozen(self):
        with pytest.raises(Exception):
            PlatformConfig().happy_size = 2


class TestValidation:
    def test_bad_interval(self):
        with pytest.raises(ValueError):
            PlatformConfig(peerview_interval=0.0)

    def test_bad_expiration(self):
        with pytest.raises(ValueError):
            PlatformConfig(pve_expiration=-1.0)

    def test_bad_happy_size(self):
        with pytest.raises(ValueError):
            PlatformConfig(happy_size=0)

    def test_bad_lease_fraction(self):
        with pytest.raises(ValueError):
            PlatformConfig(lease_renewal_fraction=1.0)
        with pytest.raises(ValueError):
            PlatformConfig(lease_renewal_fraction=0.0)

    def test_bad_lease_duration(self):
        with pytest.raises(ValueError):
            PlatformConfig(lease_duration=0.0)

    def test_bad_ttl(self):
        with pytest.raises(ValueError):
            PlatformConfig(propagate_ttl=0)
