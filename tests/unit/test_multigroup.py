"""Unit tests for multi-group membership (peer group organization)."""

import pytest

from repro.advertisement import FakeAdvertisement
from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.ids import IDFactory
from repro.network import Network
from repro.sim import MINUTES, Simulator


def build(seed=31, r=4, e=2):
    sim = Simulator(seed=seed)
    network = Network(sim)
    overlay = build_overlay(
        sim, network, PlatformConfig(),
        OverlayDescription(
            rendezvous_count=r, edge_count=e,
            edge_attachment=[i % r for i in range(e)],
        ),
    )
    overlay.start()
    sim.run(until=10 * MINUTES)
    assert overlay.group.property_2_satisfied()
    subgroup_id = IDFactory(sim.rng.stream("test.groups")).new_peer_group_id()
    return sim, overlay, subgroup_id


class TestJoinLeave:
    def test_join_as_rendezvous_creates_context(self):
        sim, overlay, gid = build()
        rdv = overlay.rendezvous[0]
        context = rdv.join_group(gid, role="rendezvous")
        assert context.is_rendezvous
        assert rdv.context(gid) is context
        assert context.started  # peer was running

    def test_duplicate_join_rejected(self):
        sim, overlay, gid = build()
        rdv = overlay.rendezvous[0]
        rdv.join_group(gid, role="rendezvous")
        with pytest.raises(ValueError):
            rdv.join_group(gid, role="edge")

    def test_unknown_role_rejected(self):
        sim, overlay, gid = build()
        with pytest.raises(ValueError):
            overlay.rendezvous[0].join_group(gid, role="observer")

    def test_cannot_leave_primary(self):
        sim, overlay, _ = build()
        rdv = overlay.rendezvous[0]
        with pytest.raises(ValueError):
            rdv.leave_group(rdv.group_id)

    def test_leave_secondary_stops_context(self):
        sim, overlay, gid = build()
        rdv = overlay.rendezvous[0]
        context = rdv.join_group(gid, role="rendezvous")
        rdv.leave_group(gid)
        assert not context.started
        assert gid not in rdv.contexts


class TestSubgroupOverlay:
    def _form_subgroup(self, sim, overlay, gid, members=3):
        """First rendezvous anchors the sub-group; others chain to it."""
        anchors = overlay.rendezvous[:members]
        contexts = []
        for i, peer in enumerate(anchors):
            seeds = [] if i == 0 else [anchors[i - 1].address]
            contexts.append(
                peer.join_group(gid, role="rendezvous", seeds=seeds)
            )
        return contexts

    def test_subgroup_peerview_converges_independently(self):
        sim, overlay, gid = build(r=5)
        contexts = self._form_subgroup(sim, overlay, gid, members=3)
        sim.run(until=sim.now + 10 * MINUTES)
        # the sub-group's peerviews see exactly the 3 members
        for context in contexts:
            assert context.view.size == 2
        # the primary (Net) group's peerviews are untouched: still all 5
        for rdv in overlay.rendezvous:
            assert rdv.view.size == 4

    def test_discovery_is_scoped_to_the_group(self):
        sim, overlay, gid = build(r=5, e=2)
        contexts = self._form_subgroup(sim, overlay, gid, members=3)
        sim.run(until=sim.now + 10 * MINUTES)

        # publish inside the sub-group only
        contexts[0].discovery.publish(FakeAdvertisement("group-private"))
        sim.run(until=sim.now + 2 * MINUTES)

        # a sub-group member finds it...
        results = []
        contexts[2].discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", "group-private",
            callback=lambda advs, lat: results.append(advs),
        )
        sim.run(until=sim.now + 1 * MINUTES)
        assert len(results) == 1

        # ...an edge of the primary group does not
        timeouts = []
        overlay.edges[0].discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", "group-private",
            callback=lambda advs, lat: pytest.fail("leaked across groups"),
            on_timeout=lambda: timeouts.append(1),
            timeout=15.0,
        )
        sim.run(until=sim.now + 1 * MINUTES)
        assert timeouts == [1]

    def test_edge_role_in_secondary_group(self):
        sim, overlay, gid = build(r=5, e=1)
        contexts = self._form_subgroup(sim, overlay, gid, members=2)
        sim.run(until=sim.now + 5 * MINUTES)
        # the primary-group *edge* joins the sub-group as an edge too,
        # leasing to a sub-group rendezvous
        edge = overlay.edges[0]
        edge_ctx = edge.join_group(
            gid, role="edge", seeds=[overlay.rendezvous[0].address]
        )
        sim.run(until=sim.now + 2 * MINUTES)
        assert edge_ctx.lease_client.connected
        assert (
            edge_ctx.lease_client.rdv_peer_id
            == overlay.rendezvous[0].peer_id
        )

        # publish through the sub-group membership and find it there
        edge_ctx.discovery.publish(FakeAdvertisement("from-subgroup-edge"))
        sim.run(until=sim.now + 2 * MINUTES)
        results = []
        contexts[1].discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", "from-subgroup-edge",
            callback=lambda advs, lat: results.append(advs),
        )
        sim.run(until=sim.now + 1 * MINUTES)
        assert len(results) == 1

    def test_mixed_roles_across_groups(self):
        sim, overlay, gid = build(r=4, e=1)
        # a primary-group rendezvous acts as a plain edge elsewhere
        rdv = overlay.rendezvous[3]
        anchor = overlay.rendezvous[0]
        anchor.join_group(gid, role="rendezvous")
        sim.run(until=sim.now + 2 * MINUTES)
        edge_ctx = rdv.join_group(gid, role="edge", seeds=[anchor.address])
        sim.run(until=sim.now + 2 * MINUTES)
        assert rdv.is_rendezvous            # primary role unchanged
        assert not edge_ctx.is_rendezvous   # secondary role is edge
        assert edge_ctx.lease_client.connected

    def test_join_before_start_starts_with_peer(self):
        sim = Simulator(seed=9)
        network = Network(sim)
        overlay = build_overlay(
            sim, network, PlatformConfig(), OverlayDescription(rendezvous_count=2)
        )
        gid = IDFactory(sim.rng.stream("g")).new_peer_group_id()
        context = overlay.rendezvous[0].join_group(gid, role="rendezvous")
        assert not context.started
        overlay.start()
        assert context.started
