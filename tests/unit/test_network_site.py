"""Unit tests for Grid'5000 sites and node placement."""

import pytest

from repro.network.site import (
    GRID5000_SITES,
    Node,
    Site,
    place_nodes,
    site_by_name,
)


class TestSites:
    def test_nine_sites(self):
        assert len(GRID5000_SITES) == 9

    def test_site_names_match_paper(self):
        names = {s.name for s in GRID5000_SITES}
        assert names == {
            "bordeaux", "grenoble", "lille", "lyon", "nancy",
            "orsay", "rennes", "sophia", "toulouse",
        }

    def test_lookup_by_name(self):
        assert site_by_name("Rennes").name == "rennes"

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            site_by_name("paris")

    def test_distance_zero_to_self(self):
        rennes = site_by_name("rennes")
        assert rennes.distance_km(rennes) == 0.0

    def test_distance_symmetric(self):
        a, b = site_by_name("rennes"), site_by_name("sophia")
        assert a.distance_km(b) == pytest.approx(b.distance_km(a))

    def test_distance_plausible_rennes_sophia(self):
        # Rennes to Sophia-Antipolis is roughly 850 km as the crow flies
        d = site_by_name("rennes").distance_km(site_by_name("sophia"))
        assert 700 < d < 1000

    def test_distance_lille_is_farthest_north(self):
        lille = site_by_name("lille")
        toulouse = site_by_name("toulouse")
        orsay = site_by_name("orsay")
        assert lille.distance_km(toulouse) > lille.distance_km(orsay)


class TestNode:
    def test_default_hostname(self):
        n = Node(3, site_by_name("lyon"))
        assert n.hostname == "lyon-3"

    def test_explicit_hostname(self):
        n = Node(0, site_by_name("lyon"), hostname="gdx-42")
        assert n.hostname == "gdx-42"

    def test_hashable(self):
        a = Node(1, site_by_name("lyon"))
        assert len({a, a}) == 1


class TestPlaceNodes:
    def test_round_robin_across_nine_sites(self):
        nodes = place_nodes(18)
        assert len(nodes) == 18
        per_site = {}
        for n in nodes:
            per_site[n.site.name] = per_site.get(n.site.name, 0) + 1
        assert all(count == 2 for count in per_site.values())

    def test_ids_are_sequential(self):
        nodes = place_nodes(5)
        assert [n.node_id for n in nodes] == [0, 1, 2, 3, 4]

    def test_explicit_per_site(self):
        nodes = place_nodes(3, per_site={"rennes": 2, "orsay": 1})
        assert [n.site.name for n in nodes] == ["rennes", "rennes", "orsay"]

    def test_per_site_sum_mismatch_rejected(self):
        with pytest.raises(ValueError):
            place_nodes(5, per_site={"rennes": 2})

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            place_nodes(-1)

    def test_subset_of_sites(self):
        rennes = site_by_name("rennes")
        nodes = place_nodes(4, sites=[rennes])
        assert all(n.site is rennes for n in nodes)

    def test_empty_site_list_rejected(self):
        with pytest.raises(ValueError):
            place_nodes(4, sites=[])

    def test_zero_nodes(self):
        assert place_nodes(0) == []
