"""Unit tests for the FuzzCase genome codec, validation and decode."""

import random

import pytest

from repro.faults import Scenario
from repro.fuzz import (
    DEFAULT_BOUNDS,
    SEED_CASES,
    FuzzCase,
    case_key,
    crossover,
    from_dict,
    from_json,
    mutate,
    random_case,
    to_dict,
    to_json,
    validate_case,
)
from repro.fuzz.genome import decode_action, decode_scenario, has_churn


def test_seed_cases_valid_and_distinct():
    keys = set()
    for case in SEED_CASES:
        validate_case(case, DEFAULT_BOUNDS)
        keys.add(case_key(case))
    assert len(keys) == len(SEED_CASES)


def test_round_trip_identity():
    for case in SEED_CASES:
        assert from_json(to_json(case)) == case
        assert from_dict(to_dict(case)) == case


def test_case_key_is_content_hash():
    a = FuzzCase(seed=1)
    b = FuzzCase(seed=1)
    c = FuzzCase(seed=2)
    assert case_key(a) == case_key(b)
    assert case_key(a) != case_key(c)
    assert len(case_key(a)) == 16


def test_unknown_version_rejected():
    data = to_dict(SEED_CASES[0])
    data["v"] = 99
    with pytest.raises(ValueError, match="version"):
        from_dict(data)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"r": 2},  # below r_min
        {"r": 99},  # above r_max
        {"duration": 10.0},  # below duration_min
        {"topology": "ring"},  # not in bounds.topologies
        {"pve_expiration": 1.0},
        {"peerview_interval": 500.0},
    ],
)
def test_out_of_bounds_cases_rejected(kwargs):
    with pytest.raises(ValueError):
        validate_case(FuzzCase(**kwargs), DEFAULT_BOUNDS)


@pytest.mark.parametrize(
    "action",
    [
        {"kind": "loss", "at": 60.0, "duration": 30.0, "rate": 1.5},
        {"kind": "loss", "at": 5.0, "duration": 30.0, "rate": 0.5},
        {"kind": "crash", "at": 60.0},  # missing peer
        {"kind": "crash", "at": 60.0, "peer": 1, "extra": 1},
        {"kind": "warp", "at": 60.0},  # unknown kind
        {"kind": "partition", "at": 60.0, "site_a": "rennes",
         "site_b": "rennes"},
        {"kind": "churn", "at": 60.0, "duration": 30.0,
         "mean_session": 60.0, "mean_downtime": 10.0, "targets": []},
    ],
)
def test_invalid_actions_rejected(action):
    case = FuzzCase(actions=(action,))
    with pytest.raises(ValueError):
        validate_case(case, DEFAULT_BOUNDS)


def test_decode_scenario_produces_runnable_scenario():
    case = SEED_CASES[1]
    scenario = decode_scenario(case)
    assert isinstance(scenario, Scenario)
    assert len(scenario.actions) == len(case.actions)
    assert scenario.name == f"fuzz-{case_key(case)}"


def test_decode_action_folds_peer_indices_modulo_r():
    action = decode_action({"kind": "crash", "at": 60.0, "peer": 7}, r=6)
    assert action.peer == "rdv-1"


def test_decode_churn_dedups_folded_targets():
    action = decode_action(
        {
            "kind": "churn", "at": 60.0, "duration": 30.0,
            "mean_session": 60.0, "mean_downtime": 10.0,
            "targets": [1, 7, 2],  # 7 % 6 == 1, duplicate
        },
        r=6,
    )
    assert action.targets == ("rdv-1", "rdv-2")


def test_has_churn():
    assert has_churn(SEED_CASES[2])
    assert not has_churn(SEED_CASES[0])


def test_random_case_always_valid():
    rng = random.Random(7)
    for _ in range(50):
        validate_case(random_case(rng, DEFAULT_BOUNDS), DEFAULT_BOUNDS)


def test_mutate_and_crossover_always_valid():
    rng = random.Random(11)
    pool = [random_case(rng, DEFAULT_BOUNDS) for _ in range(8)]
    for _ in range(50):
        child = mutate(rng.choice(pool), rng, DEFAULT_BOUNDS)
        validate_case(child, DEFAULT_BOUNDS)
        cross = crossover(
            rng.choice(pool), rng.choice(pool), rng, DEFAULT_BOUNDS
        )
        validate_case(cross, DEFAULT_BOUNDS)


def test_generation_is_seed_deterministic():
    a = [random_case(random.Random(3), DEFAULT_BOUNDS) for _ in range(1)]
    b = [random_case(random.Random(3), DEFAULT_BOUNDS) for _ in range(1)]
    assert [to_json(c) for c in a] == [to_json(c) for c in b]
