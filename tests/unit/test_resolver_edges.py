"""Edge-case tests for the resolver and relay lifecycles."""

import pytest

from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.network import Network
from repro.resolver import QueryHandler, ResolverService
from repro.sim import MINUTES, SECONDS, Simulator
from tests.unit.test_endpoint import build_peers


class TestResolverEdgeCases:
    def test_unregister_then_query_is_silent(self):
        sim, _, (a, b, _) = build_peers()
        ra = ResolverService(a, group_param="g")
        rb = ResolverService(b, group_param="g")

        class H(QueryHandler):
            def process_query(self, query):
                return "resp"

        rb.register_handler("h", H())
        rb.unregister_handler("h")
        a.router.add_route(b.peer_id, [b.transport_address])
        ra.send_query(b.peer_id, ra.new_query("h", "x"))
        sim.run()  # no crash, no response

    def test_unexpected_resolver_body_raises(self):
        sim, _, (a, b, _) = build_peers()
        ResolverService(a, group_param="g")
        rb = ResolverService(b, group_param="g")
        from repro.endpoint.service import EndpointMessage
        from repro.resolver.service import RESOLVER_SERVICE_NAME

        a.send_direct(
            b.transport_address,
            EndpointMessage(
                src_peer=a.peer_id,
                dst_peer=b.peer_id,
                service_name=RESOLVER_SERVICE_NAME,
                service_param="g",
                body={"not": "a resolver message"},
            ),
        )
        with pytest.raises(TypeError):
            sim.run()

    def test_response_to_stale_query_id_is_ignored(self):
        sim, _, (a, b, _) = build_peers()
        ra = ResolverService(a, group_param="g")
        rb = ResolverService(b, group_param="g")
        seen = []

        class Collector(QueryHandler):
            def process_response(self, response):
                seen.append(response)

        ra.register_handler("h", Collector())

        class Echo(QueryHandler):
            def process_query(self, query):
                return "resp"

        rb.register_handler("h", Echo())
        a.router.add_route(b.peer_id, [b.transport_address])
        q = ra.new_query("h", "x")
        ra.send_query(b.peer_id, q)
        sim.run()
        assert len(seen) == 1  # handlers see responses; dedup is theirs


class TestRelayReRegistration:
    def test_relay_lease_renewed_by_periodic_register(self):
        sim = Simulator(seed=5)
        network = Network(sim)
        overlay = build_overlay(
            sim, network, PlatformConfig(),
            OverlayDescription(rendezvous_count=2),
        )
        edge = overlay.group.create_edge(
            overlay.rendezvous[0].node,
            seeds=[overlay.rendezvous[0].address],
            transport="http",
        )
        # short relay lease to exercise re-registration
        overlay.start()
        sim.run(until=2 * MINUTES)
        relay = overlay.rendezvous[0].relay_server
        assert relay.client_count() == 1
        # run far past the default 300 s relay lease: periodic
        # re-registration must keep the client registered
        sim.run(until=20 * MINUTES)
        assert relay.client_count() == 1
        assert edge.relay_client.polls_sent > 100
