"""Unit tests for the flooding and centralized discovery baselines."""

import pytest

from repro.advertisement import FakeAdvertisement
from repro.baselines import build_centralized_overlay, build_flooding_overlay
from repro.baselines.centralized import centralized_replica_fn
from repro.config import PlatformConfig
from repro.deploy import OverlayDescription
from repro.network import Network
from repro.network.latency import ConstantLatency
from repro.sim import MINUTES, Simulator


def build(builder, r=5, e=2, attachment=None, seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.002))
    overlay = builder(
        sim, net, PlatformConfig(),
        OverlayDescription(
            rendezvous_count=r, edge_count=e, edge_attachment=attachment
        ),
    )
    overlay.start()
    sim.run(until=10 * MINUTES)
    assert overlay.group.property_2_satisfied()
    return sim, overlay


def publish_and_search(sim, overlay, name="Flooded"):
    publisher, searcher = overlay.edges[0], overlay.edges[-1]
    publisher.discovery.publish(FakeAdvertisement(name))
    sim.run(until=sim.now + 2 * MINUTES)
    results = []
    searcher.discovery.get_remote_advertisements(
        "repro:FakeAdvertisement", "Name", name,
        callback=lambda advs, lat: results.append((advs, lat)),
    )
    sim.run(until=sim.now + 1 * MINUTES)
    return results


class TestFlooding:
    def test_lookup_succeeds_via_flood(self):
        sim, overlay = build(build_flooding_overlay, r=5, e=2, attachment=[0, 3])
        results = publish_and_search(sim, overlay)
        assert len(results) == 1
        assert results[0][0][0].name == "Flooded"

    def test_no_replication_in_flood_mode(self):
        sim, overlay = build(build_flooding_overlay, r=5, e=2, attachment=[0, 3])
        overlay.edges[0].discovery.publish(FakeAdvertisement("OnlyHere"))
        sim.run(until=sim.now + 2 * MINUTES)
        key = ("repro:FakeAdvertisement", "Name", "OnlyHere")
        holders = [
            r for r in overlay.rendezvous
            if r.discovery.srdi.lookup(key, sim.now)
        ]
        # only the publisher's own rendezvous indexes the tuple
        assert [h.name for h in holders] == ["rdv-0"]

    def test_flood_reaches_every_rendezvous(self):
        sim, overlay = build(build_flooding_overlay, r=5, e=2, attachment=[0, 3])
        publish_and_search(sim, overlay)
        handled = [r.discovery.queries_handled for r in overlay.rendezvous]
        assert all(h >= 1 for h in handled)


class TestCentralized:
    def test_replica_fn_always_rank_0(self):
        fn = centralized_replica_fn()
        for value in ("a", "b", "c"):
            assert fn.rank(("t", "Name", value), member_count=50) == 0

    def test_all_tuples_land_on_lowest_id_rdv(self):
        sim, overlay = build(build_centralized_overlay, r=5, e=3, attachment=[0, 2, 4])
        for i, edge in enumerate(overlay.edges):
            edge.discovery.publish(FakeAdvertisement(f"item-{i}"))
        sim.run(until=sim.now + 2 * MINUTES)
        central = min(overlay.rendezvous, key=lambda r: r.peer_id)
        for i in range(3):
            key = ("repro:FakeAdvertisement", "Name", f"item-{i}")
            assert central.discovery.srdi.lookup(key, sim.now), f"missing item-{i}"

    def test_lookup_succeeds(self):
        sim, overlay = build(build_centralized_overlay, r=5, e=2, attachment=[1, 3])
        results = publish_and_search(sim, overlay, name="Central")
        assert len(results) == 1
