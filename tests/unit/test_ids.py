"""Unit tests for JXTA IDs."""

import random

import pytest

from repro.ids import (
    IDFactory,
    JxtaID,
    NET_PEER_GROUP_ID,
    PeerGroupID,
    PeerID,
    PipeID,
    WORLD_PEER_GROUP_ID,
)


class TestPeerGroupID:
    def test_from_uuid_roundtrip(self):
        gid = PeerGroupID.from_uuid(b"0123456789abcdef")
        assert gid.uuid == b"0123456789abcdef"

    def test_wrong_uuid_length_rejected(self):
        with pytest.raises(ValueError):
            PeerGroupID.from_uuid(b"short")

    def test_well_known_groups_differ(self):
        assert WORLD_PEER_GROUP_ID != NET_PEER_GROUP_ID


class TestPeerID:
    def test_from_parts(self):
        pid = PeerID.from_parts(NET_PEER_GROUP_ID, b"A" * 16)
        assert pid.group_uuid == NET_PEER_GROUP_ID.uuid
        assert pid.unique_value == b"A" * 16

    def test_from_int(self):
        pid = PeerID.from_int(NET_PEER_GROUP_ID, 6)
        assert int.from_bytes(pid.unique_value, "big") == 6

    def test_from_int_out_of_range(self):
        with pytest.raises(ValueError):
            PeerID.from_int(NET_PEER_GROUP_ID, 2**128)
        with pytest.raises(ValueError):
            PeerID.from_int(NET_PEER_GROUP_ID, -1)

    def test_type_byte_enforced(self):
        gid_bytes = NET_PEER_GROUP_ID.uuid
        with pytest.raises(ValueError):
            PeerID(gid_bytes + b"A" * 16 + b"\x05")  # pipe byte on PeerID

    def test_total_order_matches_int_order(self):
        ids = [PeerID.from_int(NET_PEER_GROUP_ID, n) for n in (180, 6, 88, 20)]
        ordered = sorted(ids)
        assert [int.from_bytes(p.unique_value, "big") for p in ordered] == [
            6, 20, 88, 180,
        ]

    def test_eq_and_hash(self):
        a = PeerID.from_int(NET_PEER_GROUP_ID, 42)
        b = PeerID.from_int(NET_PEER_GROUP_ID, 42)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_not_equal_across_types_with_same_prefix(self):
        pid = PeerID.from_parts(NET_PEER_GROUP_ID, b"A" * 16)
        pipe = PipeID.from_parts(NET_PEER_GROUP_ID, b"A" * 16)
        assert pid != pipe


class TestUrn:
    def test_urn_roundtrip(self):
        pid = PeerID.from_int(NET_PEER_GROUP_ID, 12345)
        assert PeerID.from_urn(pid.urn()) == pid

    def test_urn_prefix(self):
        pid = PeerID.from_int(NET_PEER_GROUP_ID, 1)
        assert pid.urn().startswith("urn:jxta:uuid-")

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError):
            PeerID.from_urn("urn:ietf:params:oauth")

    def test_bad_hex_rejected(self):
        with pytest.raises(ValueError):
            PeerID.from_urn("urn:jxta:uuid-ZZZZ")

    def test_str_is_urn(self):
        pid = PeerID.from_int(NET_PEER_GROUP_ID, 1)
        assert str(pid) == pid.urn()


class TestValidation:
    def test_non_bytes_rejected(self):
        with pytest.raises(TypeError):
            JxtaID("not-bytes")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            JxtaID(b"")

    def test_from_parts_wrong_unique_length(self):
        with pytest.raises(ValueError):
            PeerID.from_parts(NET_PEER_GROUP_ID, b"short")


class TestIDFactory:
    def test_determinism(self):
        a = IDFactory(random.Random(1)).new_peer_id()
        b = IDFactory(random.Random(1)).new_peer_id()
        assert a == b

    def test_uniqueness_within_factory(self):
        f = IDFactory(random.Random(1))
        ids = {f.new_peer_id() for _ in range(1000)}
        assert len(ids) == 1000

    def test_default_group_is_net_group(self):
        f = IDFactory(random.Random(1))
        assert f.new_peer_id().group_uuid == NET_PEER_GROUP_ID.uuid

    def test_explicit_group(self):
        f = IDFactory(random.Random(1))
        gid = f.new_peer_group_id()
        pid = f.new_peer_id(gid)
        assert pid.group_uuid == gid.uuid

    def test_all_id_kinds_mintable(self):
        f = IDFactory(random.Random(2))
        assert f.new_peer_group_id() is not None
        assert f.new_pipe_id() is not None
        assert f.new_module_class_id() is not None
