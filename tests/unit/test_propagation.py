"""Unit tests for the rendezvous propagation protocol."""

from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.network import Network
from repro.network.latency import ConstantLatency
from repro.resolver import QueryHandler
from repro.sim import MINUTES, Simulator


class Recorder(QueryHandler):
    def __init__(self, name):
        self.name = name
        self.seen = []

    def process_query(self, query):
        self.seen.append(query)
        return None


def build(r=5, e=1, seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.002))
    overlay = build_overlay(
        sim, net, PlatformConfig(),
        OverlayDescription(rendezvous_count=r, edge_count=e),
    )
    overlay.start()
    sim.run(until=10 * MINUTES)
    assert overlay.group.property_2_satisfied()
    return sim, overlay


HANDLER = "test.flood"


class TestRdvPropagation:
    def test_reaches_every_rendezvous(self):
        sim, overlay = build(r=5)
        recorders = []
        for rdv in overlay.rendezvous:
            rec = Recorder(rdv.name)
            rdv.resolver.register_handler(HANDLER, rec)
            recorders.append(rec)
        origin = overlay.rendezvous[0]
        query = origin.resolver.new_query(HANDLER, "flood-me")
        origin.resolver.send_query(None, query)
        sim.run(until=sim.now + 1 * MINUTES)
        assert all(len(r.seen) >= 1 for r in recorders)

    def test_no_duplicate_delivery_with_complete_views(self):
        sim, overlay = build(r=5)
        recorders = []
        for rdv in overlay.rendezvous:
            rec = Recorder(rdv.name)
            rdv.resolver.register_handler(HANDLER, rec)
            recorders.append(rec)
        origin = overlay.rendezvous[0]
        origin.resolver.send_query(None, origin.resolver.new_query(HANDLER, "x"))
        sim.run(until=sim.now + 1 * MINUTES)
        assert all(len(r.seen) == 1 for r in recorders)

    def test_edge_originated_propagation(self):
        sim, overlay = build(r=4, e=1)
        recorders = []
        for rdv in overlay.rendezvous:
            rec = Recorder(rdv.name)
            rdv.resolver.register_handler(HANDLER, rec)
            recorders.append(rec)
        edge = overlay.edges[0]
        edge.resolver.send_query(None, edge.resolver.new_query(HANDLER, "y"))
        sim.run(until=sim.now + 1 * MINUTES)
        assert all(len(r.seen) == 1 for r in recorders)

    def test_propagation_survives_incomplete_views(self):
        sim, overlay = build(r=6)
        # amputate the origin's view down to a single member: re-flood
        # through that member must still reach everyone
        origin = overlay.rendezvous[0]
        members = sorted(origin.view.known_ids())
        for pid in members[1:]:
            origin.view.remove(pid, sim.now, reason="test")
        recorders = []
        for rdv in overlay.rendezvous:
            rec = Recorder(rdv.name)
            rdv.resolver.register_handler(HANDLER, rec)
            recorders.append(rec)
        origin.resolver.send_query(None, origin.resolver.new_query(HANDLER, "z"))
        sim.run(until=sim.now + 1 * MINUTES)
        assert all(len(r.seen) >= 1 for r in recorders)

    def test_hop_count_increments_for_remote_deliveries(self):
        sim, overlay = build(r=3)
        recorders = {}
        for rdv in overlay.rendezvous:
            rec = Recorder(rdv.name)
            rdv.resolver.register_handler(HANDLER, rec)
            recorders[rdv.name] = rec
        origin = overlay.rendezvous[0]
        origin.resolver.send_query(None, origin.resolver.new_query(HANDLER, "h"))
        sim.run(until=sim.now + 1 * MINUTES)
        assert recorders["rdv-0"].seen[0].hop_count == 0  # local delivery
        assert recorders["rdv-1"].seen[0].hop_count >= 1
