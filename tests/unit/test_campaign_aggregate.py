"""Unit tests for multi-seed aggregation."""

import math

from repro.campaign.aggregate import (
    AggregateRow,
    aggregate_records,
    experiment_seed_records,
    mean_std_ci,
    render_aggregate_table,
    write_aggregates,
)
from repro.metrics.series import elementwise_mean_std


def record(seed, result, params=None, status="ok", key=None):
    params = dict(params or {}, seed=seed)
    return {
        "key": key or f"k{seed}-{sorted(params.items())}",
        "task": "t",
        "params": params,
        "status": status,
        "result": result,
    }


class TestMeanStdCi:
    def test_single_value(self):
        assert mean_std_ci([3.0]) == (3.0, 0.0, 0.0)

    def test_known_values(self):
        mean, std, ci = mean_std_ci([1.0, 2.0, 3.0])
        assert mean == 2.0
        assert std == math.sqrt(1.0)  # sample variance of 1,2,3 is 1
        assert abs(ci - 1.959963984540054 * 1.0 / math.sqrt(3)) < 1e-12


class TestElementwiseMeanStd:
    def test_mean_and_std(self):
        means, stds = elementwise_mean_std([[1.0, 10.0], [3.0, 10.0]])
        assert means == [2.0, 10.0]
        assert abs(stds[0] - math.sqrt(2.0)) < 1e-12
        assert stds[1] == 0.0

    def test_single_row_has_zero_std(self):
        means, stds = elementwise_mean_std([[5.0, 6.0]])
        assert means == [5.0, 6.0]
        assert stds == [0.0, 0.0]


class TestAggregateRecords:
    def test_groups_by_params_minus_seed(self):
        records = [
            record(1, {"m": 1.0}, params={"r": 10}),
            record(2, {"m": 3.0}, params={"r": 10}),
            record(1, {"m": 100.0}, params={"r": 20}),
        ]
        rows, _ = aggregate_records(records, campaign="c")
        by_group = {(r.group, r.metric): r for r in rows}
        assert by_group[("r=10", "m")].n == 2
        assert by_group[("r=10", "m")].mean == 2.0
        assert by_group[("r=20", "m")].n == 1

    def test_bool_metrics_become_rates(self):
        records = [
            record(1, {"ok": True}, params={"r": 1}),
            record(2, {"ok": False}, params={"r": 1}),
        ]
        rows, _ = aggregate_records(records)
        assert rows[0].mean == 0.5

    def test_non_ok_records_excluded(self):
        records = [
            record(1, {"m": 1.0}, params={"r": 1}),
            record(2, None, params={"r": 1}, status="error"),
        ]
        rows, _ = aggregate_records(records)
        assert rows[0].n == 1

    def test_series_aggregated_elementwise_with_times_axis(self):
        records = [
            record(1, {"series_times": [0.0, 60.0],
                       "series_values": [0.0, 2.0]}, params={"r": 1}),
            record(2, {"series_times": [0.0, 60.0],
                       "series_values": [0.0, 4.0]}, params={"r": 1}),
        ]
        rows, series = aggregate_records(records)
        assert rows == []  # series_times is the axis, not a metric
        (agg,) = series
        assert agg.metric == "series_values"
        assert agg.xs == [0.0, 60.0]
        assert agg.mean == [0.0, 3.0]

    def test_ragged_series_skipped(self):
        records = [
            record(1, {"v": [1.0, 2.0]}, params={"r": 1}),
            record(2, {"v": [1.0]}, params={"r": 1}),
        ]
        rows, series = aggregate_records(records)
        assert series == []

    def test_deterministic_output_order(self):
        records = [
            record(s, {"m": float(s)}, params={"r": r})
            for r in (20, 10) for s in (2, 1, 3)
        ]
        first, _ = aggregate_records(records)
        second, _ = aggregate_records(list(reversed(records)))
        assert first == second


class TestWriteAggregates:
    def records(self):
        return [
            record(s, {"m": float(s), "series_times": [0.0, 1.0],
                       "series_values": [0.0, float(s)]},
                   params={"r": 10})
            for s in (1, 2)
        ]

    def test_files_routed_through_exporters(self, tmp_path):
        written = write_aggregates("camp", self.records(), tmp_path)
        names = {p.name for p in written}
        assert names == {
            "camp-aggregate.csv", "camp-series_values.csv",
            "camp-aggregate.json",
        }
        header = (tmp_path / "camp-aggregate.csv").read_text().splitlines()[0]
        assert header == "campaign,group,metric,n,mean,std,ci95"
        series_header = (
            tmp_path / "camp-series_values.csv"
        ).read_text().splitlines()[0]
        assert series_header == "x,r=10:mean,r=10:std"

    def test_byte_identical_across_input_order(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        write_aggregates("camp", self.records(), a)
        write_aggregates("camp", list(reversed(self.records())), b)
        for name in ("camp-aggregate.csv", "camp-series_values.csv",
                     "camp-aggregate.json"):
            assert (a / name).read_bytes() == (b / name).read_bytes()


class TestRenderAggregateTable:
    def test_contains_groups_and_cis(self):
        rows = [AggregateRow("c", "r=10", "m", 3, 2.0, 1.0, 1.13)]
        text = render_aggregate_table(rows)
        assert "r=10" in text and "±1.13" in text


class TestExperimentSeedRecords:
    def test_dataclass_rows_become_records(self):
        from repro.experiments.ablation import AblationPoint

        def point(seed, mean_l):
            return AblationPoint(
                r=30, pve_expiration=600.0, peerview_interval=30.0,
                min_l=29, mean_l=mean_l, property_2=True,
                bandwidth_bps_per_rdv=100.0,
            )

        per_seed = {1: [point(1, 29.0)], 2: [point(2, 28.0)]}
        records = experiment_seed_records("ablation", per_seed)
        assert len(records) == 2
        rows, _ = aggregate_records(records, campaign="ablation")
        mean_l = [r for r in rows if r.metric == "mean_l"]
        assert mean_l and mean_l[0].n == 2 and mean_l[0].mean == 28.5

    def test_single_dataclass_result(self):
        from repro.experiments.ablation import AblationPoint

        point = AblationPoint(
            r=30, pve_expiration=600.0, peerview_interval=30.0,
            min_l=29, mean_l=29.0, property_2=True,
            bandwidth_bps_per_rdv=100.0,
        )
        records = experiment_seed_records("ablation", {1: point})
        assert len(records) == 1

    def test_label_attribute_used_when_present(self):
        from repro.experiments.fig3_left import Fig3LeftSeries
        from repro.metrics.series import StepSeries

        row = Fig3LeftSeries(
            r=10, topology="chain",
            series=StepSeries([0.0], [0.0]), final_sizes=[9],
        )
        records = experiment_seed_records("fig3-left", {1: [row]})
        assert records[0]["params"]["group"] == "10-chain"
