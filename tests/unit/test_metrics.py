"""Unit tests for the metrics subpackage."""

import pytest

from repro.advertisement.rdvadv import RdvAdvertisement
from repro.ids import NET_PEER_GROUP_ID, PeerID
from repro.metrics import (
    EventLog,
    StepSeries,
    attach_peerview_logger,
    latency_stats,
    peerview_size_series,
    render_series,
    render_table,
    sample_at,
)
from repro.rendezvous.peerview import PeerView


def adv(n):
    return RdvAdvertisement(
        rdv_peer_id=PeerID.from_int(NET_PEER_GROUP_ID, n),
        group_id=NET_PEER_GROUP_ID,
        route_hint=f"tcp://h{n}:1",
    )


class TestEventLog:
    def test_record_and_filter(self):
        log = EventLog()
        log.record(1.0, "rdv-0", "peerview.add", "abc")
        log.record(2.0, "rdv-1", "peerview.add", "def")
        log.record(3.0, "rdv-0", "peerview.remove", "abc")
        assert len(log) == 3
        assert len(log.records(kind="peerview.add")) == 2
        assert len(log.records(observer="rdv-0")) == 2
        assert len(log.records(kind="peerview.add", observer="rdv-0")) == 1

    def test_kinds_histogram(self):
        log = EventLog()
        log.record(1.0, "a", "x")
        log.record(2.0, "a", "x")
        log.record(3.0, "a", "y")
        assert log.kinds() == {"x": 2, "y": 1}


class TestPeerviewLogger:
    def test_events_flow_into_log(self):
        log = EventLog()
        view = PeerView(adv(50))
        attach_peerview_logger(log, "rdv-50", view)
        view.upsert(adv(10), now=1.0)
        view.remove(adv(10).rdv_peer_id, now=2.0)
        kinds = [r.kind for r in log.records()]
        assert kinds == ["peerview.add", "peerview.remove"]
        assert log.records()[0].observer == "rdv-50"


class TestStepSeries:
    def test_value_at(self):
        s = StepSeries([0.0, 10.0, 20.0], [0.0, 5.0, 3.0])
        assert s.value_at(-1.0) == 0.0
        assert s.value_at(0.0) == 0.0
        assert s.value_at(10.0) == 5.0
        assert s.value_at(15.0) == 5.0
        assert s.value_at(25.0) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StepSeries([0.0, 1.0], [1.0])
        with pytest.raises(ValueError):
            StepSeries([1.0, 0.0], [1.0, 2.0])

    def test_max_and_time_of_max(self):
        s = StepSeries([0.0, 5.0, 10.0], [1.0, 9.0, 2.0])
        assert s.max() == 9.0
        assert s.time_of_max() == 5.0

    def test_reconstruction_from_log(self):
        log = EventLog()
        log.record(1.0, "rdv-0", "peerview.add", "a")
        log.record(2.0, "rdv-0", "peerview.add", "b")
        log.record(3.0, "rdv-0", "peerview.remove", "a")
        series = peerview_size_series(log, "rdv-0")
        assert series.value_at(0.5) == 0
        assert series.value_at(1.5) == 1
        assert series.value_at(2.5) == 2
        assert series.value_at(3.5) == 1

    def test_sample_at_grid(self):
        s = StepSeries([0.0, 10.0], [0.0, 4.0])
        xs, ys = sample_at(s, 0.0, 20.0, 5.0)
        assert xs == [0.0, 5.0, 10.0, 15.0, 20.0]
        assert ys == [0.0, 0.0, 4.0, 4.0, 4.0]

    def test_sample_bad_step(self):
        with pytest.raises(ValueError):
            sample_at(StepSeries([0.0], [1.0]), 0.0, 1.0, 0.0)


class TestLatencyStats:
    def test_basic_stats(self):
        stats = latency_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats["mean"] == 3.0
        assert stats["min"] == 1.0
        assert stats["max"] == 5.0
        assert stats["count"] == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            latency_stats([])


class TestRenderers:
    def test_table_alignment(self):
        text = render_table(["a", "bee"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bee" in lines[0]
        assert "---" in lines[1]

    def test_series_render(self):
        text = render_series("t", [0.0, 1.0], {"l": [3.0, 4.0]})
        assert "t" in text and "l" in text
        assert "3.0" in text and "4.0" in text

    def test_table_with_no_rows(self):
        text = render_table(["a", "b"], [])
        lines = text.splitlines()
        assert len(lines) == 2  # header + separator only

    def test_series_with_ragged_columns(self):
        text = render_series("t", [0.0, 1.0], {"short": [9.0]})
        assert "9.0" in text  # missing cell rendered empty, no crash

    def test_series_custom_format(self):
        text = render_series("t", [0.123], {"v": [0.456]}, "{:.3f}")
        assert "0.123" in text and "0.456" in text
