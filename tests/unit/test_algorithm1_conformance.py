"""Conformance tests: Algorithm 1, line by line.

Each test pins one line of the paper's pseudo-code against the
implementation's observable behaviour, using the message tracer where
the behaviour is a wire action.
"""

import pytest

from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.network import Network
from repro.rendezvous.messages import PeerViewProbe, PeerViewUpdate
from repro.sim import MINUTES, SECONDS, Simulator
from repro.sim.tracing import MessageTracer


def build(r=6, seed=2, **overrides):
    sim = Simulator(seed=seed)
    network = Network(sim)
    config = PlatformConfig().with_overrides(**overrides)
    overlay = build_overlay(
        sim, network, config, OverlayDescription(rendezvous_count=r)
    )
    return sim, network, overlay


class TestLine2_Wait:
    """`wait for PEERVIEW_INTERVAL` — the loop period is respected."""

    def test_iteration_period(self):
        sim, network, overlay = build(r=2, startup_jitter=0.0)
        overlay.start()
        rdv = overlay.rendezvous[1]  # has a seed to probe
        sim.run(until=10 * MINUTES)
        # immediate first tick + one per 30 s
        expected = 1 + int(10 * MINUTES // (30 * SECONDS))
        assert rdv.peerview_protocol._task.ticks == pytest.approx(expected, abs=1)


class TestLine3_Expiry:
    """`remove entries ... for which time > PVE_EXPIRATION`."""

    def test_stale_entry_removed_on_next_iteration(self):
        sim, network, overlay = build(r=2, pve_expiration=2 * MINUTES)
        overlay.start()
        sim.run(until=1 * MINUTES)
        a, b = overlay.rendezvous
        assert b.peer_id in a.view
        b.crash()  # b stops refreshing a's entry
        sim.run(until=6 * MINUTES)
        assert b.peer_id not in a.view


class TestLines5to12_NeighborBranch:
    """`for rdv in {upper_rdv, lower_rdv}: ...` with the rand()%3 coin."""

    def test_update_fraction_is_about_one_third_when_happy(self):
        sim, network, overlay = build(r=8)
        tracer = MessageTracer(
            network, payload_types=("PeerViewProbe", "PeerViewUpdate")
        )
        overlay.start()
        sim.run(until=60 * MINUTES)
        updates = tracer.count("PeerViewUpdate")
        probes = tracer.count("PeerViewProbe")
        # neighbour traffic: probes also include verification/refresh
        # probes, so bound the ratio from the update side: updates are
        # sent only on the 1/3 branch of the neighbour loop
        neighbor_actions_lower_bound = updates * 3 * 0.6
        assert updates > 0
        assert probes > neighbor_actions_lower_bound / 3

    def test_no_updates_below_happy_size(self):
        # a 2-peer overlay never reaches HAPPY_SIZE=4: the l <
        # HAPPY_SIZE branch always probes, never updates
        sim, network, overlay = build(r=2)
        tracer = MessageTracer(network, payload_types=("PeerViewUpdate",))
        overlay.start()
        sim.run(until=30 * MINUTES)
        assert tracer.count("PeerViewUpdate") == 0

    def test_both_neighbors_contacted_each_iteration(self):
        sim, network, overlay = build(r=6, pve_expiration=90 * MINUTES)
        overlay.start()
        sim.run(until=10 * MINUTES)
        # the middle peer (by ID) has both neighbours; trace one interval
        middle = sorted(overlay.rendezvous, key=lambda p: p.peer_id)[2]
        upper = middle.view.upper_neighbor()
        lower = middle.view.lower_neighbor()
        assert upper is not None and lower is not None
        tracer = MessageTracer(
            network,
            payload_types=("PeerViewProbe", "PeerViewUpdate"),
            addresses=(middle.address,),
        )
        sim.run(until=sim.now + 10 * MINUTES)
        upper_addr = overlay.group.peer(upper).address
        lower_addr = overlay.group.peer(lower).address
        contacted = {e.dst for e in tracer.entries if e.src == middle.address}
        assert upper_addr in contacted
        assert lower_addr in contacted


class TestLines13to14_SeedProbing:
    """`if l < HAPPY_SIZE: probe seeds` (+ boot-time contact)."""

    def test_seeds_probed_at_boot(self):
        sim, network, overlay = build(r=3, startup_jitter=1.0)
        tracer = MessageTracer(network, payload_types=("PeerViewProbe",))
        overlay.start()
        sim.run(until=30 * SECONDS)
        # rdv-1's seed is rdv-0: the very first iteration probes it
        sent = [
            e for e in tracer.entries
            if e.src == overlay.rendezvous[1].address
            and e.dst == overlay.rendezvous[0].address
        ]
        assert sent

    def test_unhappy_view_keeps_probing_seeds(self):
        # two peers: l stays at 1 < HAPPY_SIZE, so the seed is probed
        # every interval, not just at boot
        sim, network, overlay = build(r=2, startup_jitter=0.0)
        tracer = MessageTracer(network, payload_types=("PeerViewProbe",))
        overlay.start()
        sim.run(until=10 * MINUTES)
        seed_probes = [
            e for e in tracer.entries
            if e.src == overlay.rendezvous[1].address
            and e.dst == overlay.rendezvous[0].address
        ]
        assert len(seed_probes) >= 10

    def test_happy_view_stops_probing_seeds(self):
        sim, network, overlay = build(r=8, pve_expiration=90 * MINUTES)
        overlay.start()
        sim.run(until=10 * MINUTES)  # views complete (7 >= HAPPY_SIZE)
        rdv1 = overlay.rendezvous[1]
        seed_addr = overlay.rendezvous[0].address
        tracer = MessageTracer(network, payload_types=("PeerViewProbe",))
        sim.run(until=sim.now + 10 * MINUTES)
        # rdv-1 may still probe rdv-0 as a neighbour/refresh target,
        # but never via the seed branch; distinguish by rate: the seed
        # branch would add one probe *every* interval (20 over 10 min)
        seed_probes = [
            e for e in tracer.entries
            if e.src == rdv1.address and e.dst == seed_addr
        ]
        assert len(seed_probes) < 20


class TestProbeResponseContract:
    """§3.2: response + separate referral; referred peers are verified."""

    def test_probe_yields_response_and_referral(self):
        sim, network, overlay = build(r=6)
        tracer = MessageTracer(
            network,
            payload_types=("PeerViewResponse", "PeerViewReferral"),
        )
        overlay.start()
        sim.run(until=10 * MINUTES)
        assert tracer.count("PeerViewResponse") > 0
        assert tracer.count("PeerViewReferral") > 0

    def test_verification_probes_do_not_solicit_referrals(self):
        sim, network, overlay = build(r=6)
        captured = []
        original_send = network.send

        def spy(src, dst, payload, size_bytes=512, on_drop=None):
            body = getattr(payload, "body", None)
            if isinstance(body, PeerViewProbe) and not body.want_referral:
                captured.append((src, dst))
            return original_send(
                src, dst, payload, size_bytes=size_bytes, on_drop=on_drop
            )

        network.send = spy
        overlay.start()
        sim.run(until=10 * MINUTES)
        # verification probes exist (unknown referred peers were probed)
        assert captured
