"""Unit tests for rendezvous wire message types."""

from repro.advertisement.rdvadv import RdvAdvertisement
from repro.ids import NET_PEER_GROUP_ID, PeerID
from repro.rendezvous.messages import (
    LeaseCancel,
    LeaseGrant,
    LeaseRequest,
    PeerViewProbe,
    PeerViewReferral,
    PeerViewResponse,
    PeerViewUpdate,
    PropagatedMessage,
)


def adv(n=1):
    return RdvAdvertisement(
        rdv_peer_id=PeerID.from_int(NET_PEER_GROUP_ID, n),
        group_id=NET_PEER_GROUP_ID,
        route_hint=f"tcp://h{n}:1",
    )


class TestPeerViewMessages:
    def test_probe_wants_referral_by_default(self):
        assert PeerViewProbe(adv()).want_referral

    def test_verification_probe_flag(self):
        assert not PeerViewProbe(adv(), want_referral=False).want_referral

    def test_sizes_exceed_advertisement_size(self):
        a = adv()
        for msg in (
            PeerViewProbe(a),
            PeerViewUpdate(a),
            PeerViewResponse(a),
        ):
            assert msg.size_bytes() > a.size_bytes()

    def test_referral_size_scales_with_batch(self):
        one = PeerViewReferral([adv(1)])
        three = PeerViewReferral([adv(1), adv(2), adv(3)])
        assert three.size_bytes() > 2 * one.size_bytes()


class TestLeaseMessages:
    def test_request_fields(self):
        pid = PeerID.from_int(NET_PEER_GROUP_ID, 9)
        req = LeaseRequest(edge_peer=pid, edge_address="tcp://e:1")
        assert not req.renewal
        assert req.size_bytes() > 0

    def test_grant_carries_duration(self):
        grant = LeaseGrant(rdv_adv=adv(), lease_duration=1800.0)
        assert grant.lease_duration == 1800.0
        assert grant.size_bytes() > adv().size_bytes()

    def test_cancel(self):
        pid = PeerID.from_int(NET_PEER_GROUP_ID, 9)
        assert LeaseCancel(peer=pid).size_bytes() > 0


class TestPropagatedMessage:
    def test_size_includes_visited_list(self):
        pids = [PeerID.from_int(NET_PEER_GROUP_ID, i) for i in range(5)]
        empty = PropagatedMessage(payload="x", ttl=3)
        full = PropagatedMessage(payload="x", ttl=3, visited=pids)
        assert full.size_bytes() > empty.size_bytes()

    def test_size_includes_payload(self):
        big = PropagatedMessage(payload="y" * 1000, ttl=3)
        small = PropagatedMessage(payload="y", ttl=3)
        assert big.size_bytes() > small.size_bytes()
