"""The ``--profile`` flag must work for any experiment subcommand."""

import pstats

from repro.experiments import cli


def test_profile_flag_dumps_stats_and_reports(tmp_path, capsys):
    out = tmp_path / "table1.prof"
    rc = cli.main(
        ["table1", "--profile", "--profile-out", str(out), "--profile-top", "3"]
    )
    assert rc == 0
    assert out.exists() and out.stat().st_size > 0

    captured = capsys.readouterr().out
    assert "profile: top 3 functions by cumulative time" in captured
    assert f"profile dumped to {out}" in captured

    # the dump is a loadable cProfile stats file with real entries
    stats = pstats.Stats(str(out))
    assert stats.total_calls > 0


def test_profile_default_dump_location(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    rc = cli.main(["table1", "--profile", "--profile-top", "1"])
    assert rc == 0
    assert (tmp_path / "profile-table1.prof").exists()
