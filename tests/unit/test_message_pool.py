"""Unit tests for the steady-state free lists.

Covers the kernel handle pool (acquire/release/``schedule_recycled``
and the ``REPRO_POOL_DEBUG=1`` integrity checks), the network envelope
pool, and the message-shell pool contract (only ``recyclable`` shells
are pooled, only on the pooled — never-duplicated — delivery path, and
``forwarded()`` copies are never recyclable).
"""

import pytest

from repro.endpoint.service import EndpointMessage
from repro.ids.jxtaid import NET_PEER_GROUP_ID, PeerID
from repro.network.latency import ConstantLatency
from repro.network.site import place_nodes
from repro.network.transport import Network
from repro.sim import Simulator
from repro.sim.kernel import SchedulingError


def make_net(**kwargs):
    sim = Simulator(seed=5)
    net = Network(
        sim, latency=ConstantLatency(0.01), sw_overhead=0.0, **kwargs
    )
    nodes = place_nodes(2)
    return sim, net, nodes


def make_message(recyclable=False):
    return EndpointMessage(
        src_peer=PeerID.from_int(NET_PEER_GROUP_ID, 1),
        dst_peer=None,
        service_name="svc",
        service_param="param",
        body="body",
        origin_address="a",
        recyclable=recyclable,
    )


class TestHandlePool:
    def test_fired_handle_cycles_through_pool(self):
        sim = Simulator(seed=1)
        fired = []
        sim.schedule(0.1, fired.append, 1, label="x")
        sim.run()
        handle = sim.acquire_handle("y")
        sim.release_handle(handle)
        assert sim.acquire_handle("z") is handle

    def test_release_of_pending_handle_rejected(self):
        sim = Simulator(seed=1)
        handle = sim.schedule(1.0, lambda: None, label="pending")
        with pytest.raises(SchedulingError):
            sim.release_handle(handle)

    def test_schedule_recycled_negative_delay_rejected(self):
        sim = Simulator(seed=1)
        with pytest.raises(SchedulingError):
            sim.schedule_recycled(-0.5, lambda a, b, h: None, 1, 2, "x")

    def test_schedule_recycled_passes_handle_to_callback(self):
        sim = Simulator(seed=1)
        seen = []
        handle = sim.schedule_recycled(
            0.25, lambda a, b, h: seen.append((a, b, h)), "a", "b", "lbl"
        )
        sim.run()
        assert seen == [("a", "b", handle)]
        assert handle.label == "lbl"


class TestPoolDebug:
    def test_double_release_detected(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_DEBUG", "1")
        sim = Simulator(seed=1)
        handle = sim.schedule(0.1, lambda: None, label="x")
        sim.run()
        sim.release_handle(handle)
        with pytest.raises(SchedulingError, match="double release"):
            sim.release_handle(handle)

    def test_rearm_of_pool_resident_handle_detected(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_DEBUG", "1")
        sim = Simulator(seed=1)
        handle = sim.schedule(0.1, lambda: None, label="x")
        sim.run()
        sim.release_handle(handle)
        with pytest.raises(SchedulingError, match="resident in the free"):
            sim.reschedule(handle, 1.0, lambda: None, ())


class TestEnvelopePool:
    def test_envelope_object_is_recycled(self):
        sim, net, nodes = make_net()
        received = []
        net.attach("a", nodes[0], received.append)
        net.attach("b", nodes[1], received.append)
        net.send("a", "b", "one")
        sim.run()
        first = received[0]
        first_id = first.envelope_id
        net.send("a", "b", "two")
        sim.run()
        assert received[1] is first  # same shell, rewritten in place
        assert received[1].envelope_id != first_id
        assert received[1].payload == "two"

    def test_pooling_off_allocates_fresh_envelopes(self):
        sim, net, nodes = make_net(pooling=False)
        received = []
        net.attach("a", nodes[0], received.append)
        net.attach("b", nodes[1], received.append)
        net.send("a", "b", "one")
        sim.run()
        net.send("a", "b", "two")
        sim.run()
        assert received[0] is not received[1]

    def test_recycled_send_still_validates_size(self):
        sim, net, nodes = make_net()
        net.attach("a", nodes[0], lambda e: None)
        net.attach("b", nodes[1], lambda e: None)
        net.send("a", "b", "warm")
        sim.run()
        assert net._envelope_pool
        with pytest.raises(ValueError):
            net.send("a", "b", "bad", size_bytes=0)


class TestMessageShellPool:
    def test_recyclable_shell_returns_to_pool(self):
        sim, net, nodes = make_net()
        received = []
        net.attach("a", nodes[0], received.append)
        net.attach("b", nodes[1], received.append)
        message = make_message(recyclable=True)
        net.send("a", "b", message, size_bytes=300)
        sim.run()
        assert received[0].payload is message
        assert message in net.message_pool
        assert message.recyclable is False  # flag cleared on release

    def test_plain_shell_is_not_pooled(self):
        sim, net, nodes = make_net()
        net.attach("a", nodes[0], lambda e: None)
        net.attach("b", nodes[1], lambda e: None)
        net.send("a", "b", make_message(recyclable=False), size_bytes=300)
        sim.run()
        assert net.message_pool == []

    def test_unpooled_delivery_never_recycles_shells(self):
        # with pooling off the delivery path carries no handle, so even
        # a recyclable-marked shell must stay out of the pool (that
        # path also serves fault-injected duplicate deliveries, which
        # share one shell)
        sim, net, nodes = make_net(pooling=False)
        net.attach("a", nodes[0], lambda e: None)
        net.attach("b", nodes[1], lambda e: None)
        message = make_message(recyclable=True)
        net.send("a", "b", message, size_bytes=300)
        sim.run()
        assert net.message_pool == []
        assert message.recyclable is True

    def test_forwarded_copy_is_never_recyclable(self):
        message = make_message(recyclable=True)
        copy = message.forwarded()
        assert copy.recyclable is False
        assert copy.ttl == message.ttl - 1
        assert copy.hops_taken == message.hops_taken + 1

    def test_peerview_steady_state_circulates_shells(self):
        # a running overlay should reach a working set of pooled
        # shells instead of allocating one per send
        from repro.config import PlatformConfig
        from repro.deploy import OverlayDescription, build_overlay
        from repro.sim import MINUTES

        sim = Simulator(seed=2)
        net = Network(sim)
        overlay = build_overlay(
            sim, net, PlatformConfig(),
            OverlayDescription(rendezvous_count=8),
        )
        overlay.start()
        sim.run(until=3 * MINUTES)
        assert net.message_pool
        assert all(not m.recyclable for m in net.message_pool)
