"""Unit tests for the metrics export helpers."""

import pytest

from repro.metrics import EventLog
from repro.metrics.export import (
    event_log_from_csv,
    event_log_to_csv,
    series_to_csv,
    step_series_from_json,
    step_series_to_json,
)
from repro.metrics.series import StepSeries


@pytest.fixture
def log():
    out = EventLog()
    out.record(1.0, "rdv-0", "peerview.add", "aa", 0.0)
    out.record(2.5, "rdv-1", "peerview.remove", "bb", 1.5)
    return out


class TestEventLogCsv:
    def test_roundtrip(self, log, tmp_path):
        path = tmp_path / "events.csv"
        assert event_log_to_csv(log, path) == 2
        loaded = event_log_from_csv(path)
        assert loaded.records() == log.records()

    def test_empty_log(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert event_log_to_csv(EventLog(), path) == 0
        assert len(event_log_from_csv(path)) == 0


class TestSeriesCsv:
    def test_columns_written(self, tmp_path):
        path = tmp_path / "series.csv"
        rows = series_to_csv(
            "t", [0.0, 1.0], {"a": [1.0, 2.0], "b": [3.0, 4.0]}, path
        )
        assert rows == 2
        lines = path.read_text().splitlines()
        assert lines[0] == "t,a,b"
        assert lines[1] == "0.0,1.0,3.0"
        assert lines[2] == "1.0,2.0,4.0"

    def test_ragged_series_padded(self, tmp_path):
        path = tmp_path / "ragged.csv"
        series_to_csv("t", [0.0, 1.0], {"a": [1.0]}, path)
        lines = path.read_text().splitlines()
        assert lines[2].endswith(",")


class TestStepSeriesJson:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "series.json"
        series = StepSeries([0.0, 5.0, 9.0], [0.0, 2.0, 1.0])
        step_series_to_json(series, path)
        loaded = step_series_from_json(path)
        assert loaded.times == series.times
        assert loaded.values == series.values
