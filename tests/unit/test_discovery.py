"""Unit tests for the discovery service and the LC-DHT."""

import pytest

from repro.advertisement import FakeAdvertisement, PeerAdvertisement
from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.network import Network
from repro.network.latency import ConstantLatency
from repro.sim import MINUTES, SECONDS, Simulator


def build(r=6, e=2, seed=1, attachment=None, latency=0.002, **overrides):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(latency))
    config = PlatformConfig().with_overrides(**overrides)
    overlay = build_overlay(
        sim, net, config,
        OverlayDescription(
            rendezvous_count=r, edge_count=e, edge_attachment=attachment
        ),
    )
    overlay.start()
    return sim, overlay


def converge(sim, overlay, minutes=10):
    sim.run(until=minutes * MINUTES)
    assert overlay.group.property_2_satisfied()
    assert overlay.group.connected_edge_count() == len(overlay.edges)


class TestPublish:
    def test_srdi_reaches_rdv_and_replica(self):
        sim, overlay = build(r=6, e=1, attachment=[0])
        converge(sim, overlay)
        edge = overlay.edges[0]
        edge.discovery.publish(FakeAdvertisement("Test"), expiration=2 * 3600)
        sim.run(until=sim.now + 2 * MINUTES)  # SRDI push interval
        own_rdv = overlay.rendezvous[0]
        tuple_key = ("repro:FakeAdvertisement", "Name", "Test")
        # the edge's own rendezvous stores the tuple (Figure 2, step 1)
        assert own_rdv.discovery.srdi.lookup(tuple_key, sim.now)
        # the tuple is replicated somewhere in the rendezvous network
        holders = [
            rdv for rdv in overlay.rendezvous
            if rdv.discovery.srdi.lookup(tuple_key, sim.now)
        ]
        assert len(holders) >= 2 or (
            len(holders) == 1 and holders[0] is own_rdv
        )

    def test_publish_on_rendezvous_indexes_immediately(self):
        sim, overlay = build(r=4, e=0)
        converge(sim, overlay)
        rdv = overlay.rendezvous[0]
        rdv.discovery.publish(FakeAdvertisement("Local"))
        sim.run(until=sim.now + 1 * MINUTES)
        key = ("repro:FakeAdvertisement", "Name", "Local")
        holders = [
            r for r in overlay.rendezvous if r.discovery.srdi.lookup(key, sim.now)
        ]
        assert rdv in holders

    def test_replica_copy_is_not_rereplicated(self):
        sim, overlay = build(r=6, e=1, attachment=[0])
        converge(sim, overlay)
        overlay.edges[0].discovery.publish(FakeAdvertisement("Once"))
        sim.run(until=sim.now + 2 * MINUTES)
        key = ("repro:FakeAdvertisement", "Name", "Once")
        holders = [
            r for r in overlay.rendezvous if r.discovery.srdi.lookup(key, sim.now)
        ]
        # exactly the edge's rdv + at most one replica peer
        assert 1 <= len(holders) <= 2


class TestDiscovery:
    def test_end_to_end_lookup(self):
        sim, overlay = build(r=6, e=2, attachment=[0, 1])
        converge(sim, overlay)
        publisher, searcher = overlay.edges
        publisher.discovery.publish(FakeAdvertisement("Test", payload="data"))
        sim.run(until=sim.now + 2 * MINUTES)
        results = []
        searcher.discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", "Test",
            callback=lambda advs, lat: results.append((advs, lat)),
        )
        sim.run(until=sim.now + 1 * MINUTES)
        assert len(results) == 1
        advs, latency = results[0]
        assert advs[0].name == "Test"
        assert 0 < latency < 1.0

    def test_searcher_caches_result(self):
        sim, overlay = build(r=6, e=2, attachment=[0, 1])
        converge(sim, overlay)
        publisher, searcher = overlay.edges
        publisher.discovery.publish(FakeAdvertisement("Test"))
        sim.run(until=sim.now + 2 * MINUTES)
        searcher.discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", "Test",
            callback=lambda advs, lat: None,
        )
        sim.run(until=sim.now + 1 * MINUTES)
        cached = searcher.cache.search(
            "repro:FakeAdvertisement", "Name", "Test", sim.now
        )
        assert len(cached) == 1

    def test_miss_times_out(self):
        sim, overlay = build(r=4, e=1, attachment=[0])
        converge(sim, overlay)
        searcher = overlay.edges[0]
        timeouts = []
        searcher.discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", "DoesNotExist",
            callback=lambda advs, lat: pytest.fail("should not succeed"),
            on_timeout=lambda: timeouts.append(1),
            timeout=20 * SECONDS,
        )
        sim.run(until=sim.now + 1 * MINUTES)
        assert timeouts == [1]

    def test_rendezvous_can_search_too(self):
        # "for rendezvous peers this step is not necessary as they act
        # as their own rendezvous" (§3.3)
        sim, overlay = build(r=5, e=1, attachment=[0])
        converge(sim, overlay)
        overlay.edges[0].discovery.publish(FakeAdvertisement("FromEdge"))
        sim.run(until=sim.now + 2 * MINUTES)
        results = []
        overlay.rendezvous[3].discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", "FromEdge",
            callback=lambda advs, lat: results.append(advs),
        )
        sim.run(until=sim.now + 1 * MINUTES)
        assert len(results) == 1

    def test_peer_advertisement_discovery_like_paper(self):
        # §3.3's worked example: a peer advertisement indexed on
        # Name=Test
        sim, overlay = build(r=6, e=2, attachment=[0, 1])
        converge(sim, overlay)
        publisher, searcher = overlay.edges
        adv = PeerAdvertisement(
            publisher.peer_id, publisher.group_id, "Test"
        )
        publisher.discovery.publish(adv)
        sim.run(until=sim.now + 2 * MINUTES)
        results = []
        searcher.discovery.get_remote_advertisements(
            "jxta:PA", "Name", "Test",
            callback=lambda advs, lat: results.append(advs),
        )
        sim.run(until=sim.now + 1 * MINUTES)
        assert results and results[0][0].peer_id == publisher.peer_id

    def test_wildcard_query(self):
        sim, overlay = build(r=4, e=2, attachment=[0, 1])
        converge(sim, overlay)
        publisher, searcher = overlay.edges
        publisher.discovery.publish(FakeAdvertisement("sensor-12"))
        sim.run(until=sim.now + 2 * MINUTES)
        results = []
        searcher.discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", "sensor-*",
            callback=lambda advs, lat: results.append(advs),
        )
        sim.run(until=sim.now + 1 * MINUTES)
        assert results and results[0][0].name == "sensor-12"


class TestWalkFallback:
    def test_lookup_succeeds_despite_replica_mismatch(self):
        """Force inconsistent peerviews by hiding a rendezvous from the
        searcher's rdv view: the walk must still find the resource."""
        sim, overlay = build(r=8, e=2, attachment=[0, 4])
        converge(sim, overlay)
        publisher, searcher = overlay.edges
        publisher.discovery.publish(FakeAdvertisement("WalkMe"))
        sim.run(until=sim.now + 2 * MINUTES)

        # amputate the searcher-side rendezvous' peerview so its
        # replica computation disagrees with everyone else's; the
        # extreme entries are kept so both walk directions still start
        # (a view that believes it is the end of the ID order walks one
        # way only — a faithful LC-DHT failure mode, tested separately)
        searcher_rdv = overlay.rendezvous[4]
        ordered = sorted(searcher_rdv.view.known_ids())
        victims = ordered[1:-1:2]
        for pid in victims:
            searcher_rdv.view.remove(pid, sim.now, reason="test-amputation")

        results = []
        searcher.discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", "WalkMe",
            callback=lambda advs, lat: results.append((advs, lat)),
        )
        sim.run(until=sim.now + 1 * MINUTES)
        assert len(results) == 1

    def test_walk_steps_counted(self):
        sim, overlay = build(r=8, e=1, attachment=[0])
        converge(sim, overlay)
        searcher = overlay.edges[0]
        searcher.discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", "Nothing",
            callback=lambda advs, lat: None,
            on_timeout=lambda: None,
            timeout=20 * SECONDS,
        )
        sim.run(until=sim.now + 1 * MINUTES)
        total_walk = sum(
            r.discovery.walk_steps for r in overlay.rendezvous
        )
        # a complete both-direction walk touches every rendezvous once
        assert total_walk >= overlay.group.r - 2


class TestThreshold:
    def test_threshold_collects_multiple_publishers(self):
        sim, overlay = build(r=4, e=3, attachment=[0, 1, 2])
        converge(sim, overlay)
        e1, e2, searcher = overlay.edges
        # two different advertisements share the indexed Name value
        e1.discovery.publish(FakeAdvertisement("Shared", payload="a"))
        e2.discovery.publish(FakeAdvertisement("Shared", payload="b"))
        sim.run(until=sim.now + 2 * MINUTES)
        results = []
        searcher.discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", "Shared",
            callback=lambda advs, lat: results.append(advs),
            threshold=2,
            timeout=30 * SECONDS,
        )
        sim.run(until=sim.now + 1 * MINUTES)
        assert len(results) == 1
        # both publishers' payloads present (same unique_key... they
        # dedup by key, so at least one arrives; threshold waits for 2
        # distinct advertisements only if keys differ)
        assert len(results[0]) >= 1


class TestBootPublication:
    def test_peers_are_discoverable_by_name_automatically(self):
        # every peer publishes its own peer advertisement at start
        sim, overlay = build(r=4, e=2, attachment=[0, 2])
        converge(sim, overlay)
        sim.run(until=sim.now + 2 * MINUTES)  # SRDI propagation
        results = []
        overlay.edges[1].discovery.get_remote_advertisements(
            "jxta:PA", "Name", "edge-0",
            callback=lambda advs, lat: results.append(advs),
        )
        sim.run(until=sim.now + 1 * MINUTES)
        assert results
        assert results[0][0].peer_id == overlay.edges[0].peer_id


class TestReplicaPublisherIdentity:
    def test_replica_record_names_the_edge_not_the_forwarding_rdv(self):
        # regression: replica copies travel rendezvous-to-rendezvous,
        # but the stored publisher must remain the ORIGINAL edge;
        # recording the forwarding rendezvous made lookups forward
        # queries to a rendezvous, which re-walked them forever
        sim, overlay = build(r=6, e=1, attachment=[0])
        converge(sim, overlay)
        edge = overlay.edges[0]
        edge.discovery.publish(FakeAdvertisement("Identity"))
        sim.run(until=sim.now + 2 * MINUTES)
        key = ("repro:FakeAdvertisement", "Name", "Identity")
        rdv_ids = {r.peer_id for r in overlay.rendezvous}
        found_any = False
        for rdv in overlay.rendezvous:
            for record in rdv.discovery.srdi.lookup(key, sim.now):
                found_any = True
                assert record.publisher == edge.peer_id
                assert record.publisher not in rdv_ids
        assert found_any

    def test_wildcard_walk_collects_across_rendezvous(self):
        # three publishers on three different rendezvous; a threshold-3
        # wildcard query must walk past the first hit and terminate
        sim, overlay = build(r=6, e=4, attachment=[0, 1, 2, 3])
        converge(sim, overlay)
        for i, edge in enumerate(overlay.edges[:3]):
            edge.discovery.publish(FakeAdvertisement(f"svc-{i}"))
        sim.run(until=sim.now + 2 * MINUTES)
        results = []
        client = overlay.edges[3]
        client.discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", "svc-*",
            callback=lambda advs, lat: results.append(advs),
            threshold=3, timeout=20 * SECONDS,
        )
        events_before = sim.events_fired
        sim.run(until=sim.now + 1 * MINUTES)
        assert results and len(results[0]) == 3
        # and the walk terminated (no runaway event loop)
        assert sim.events_fired - events_before < 5000


class TestCosts:
    def test_srdi_store_size_increases_processing_delay(self):
        cfg = PlatformConfig()
        assert cfg.srdi_match_cost > 0
        sim, overlay = build(r=2, e=2, attachment=[0, 0])
        converge(sim, overlay)
        noiser, searcher = overlay.edges
        for i in range(50):
            noiser.discovery.publish(FakeAdvertisement(f"fake-{i}"))
        sim.run(until=sim.now + 2 * MINUTES)
        assert len(overlay.rendezvous[0].discovery.srdi) >= 50
