"""Pickle contracts of the snapshot-critical classes.

Every class that carries derived or process-local state (memo caches,
id()-based integrity sets, free lists, the ``_DETACHED`` sentinel)
defines an explicit ``__getstate__``/``__setstate__`` pair so a
:mod:`repro.snapshot` blob round-trips exactly.  One test class per
audited type; each asserts both directions of the contract:

* derived state is *dropped* (pickle bytes do not depend on whether a
  cache happened to be populated before the snapshot), and
* the restored object *recomputes* it correctly on demand.
"""

import os
import pickle

import pytest

from repro.advertisement.rdvadv import RdvAdvertisement
from repro.ids import NET_PEER_GROUP_ID, PeerID
from repro.ids.intern import IdInternTable
from repro.network.latency import ConstantLatency
from repro.network.transport import Network
from repro.rendezvous.peerview import PeerView
from repro.sim import Simulator
from repro.sim.kernel import _DETACHED, EventHandle, SchedulingError
from repro.sim.rng import RngRegistry


def pid(n):
    return PeerID.from_int(NET_PEER_GROUP_ID, n)


def _noop(*args):
    """Module-level so scheduled events pickle by reference."""


def rdv_adv(n):
    return RdvAdvertisement(
        rdv_peer_id=pid(n),
        group_id=NET_PEER_GROUP_ID,
        name=f"rdv-{n}",
        route_hint=f"tcp://host-{n}:9701",
    )


class TestEventHandle:
    def test_pending_handle_keeps_simulator_backref(self):
        sim = Simulator(seed=7)
        fired = []
        sim.schedule(5.0, fired.append, "a", label="ev-a")
        sim.schedule(9.0, fired.append, "b", label="ev-b")
        sim2 = pickle.loads(pickle.dumps(sim))
        # the handles inside the queue entries resolved their _state
        # backref through the pickle memo: cancelling one must mutate
        # the *restored* simulator, not blow up on a stale reference
        sim2.run(until=10.0)
        assert sim2.now == 10.0

    def test_fast_path_handle_with_unset_slots(self):
        # schedule() writes only _state plus one of _label/fn; the
        # remaining slots are legitimately unset and must not break
        # __getstate__
        sim = Simulator(seed=7)
        handle = sim.schedule(1.0, _noop)
        clone = pickle.loads(pickle.dumps(handle))
        assert clone.label == handle.label

    def test_detached_sentinel_survives_round_trip(self):
        handle = EventHandle.__new__(EventHandle)
        handle._label = "detached"
        handle._state = _DETACHED
        clone = pickle.loads(pickle.dumps(handle))
        # identity, not equality: cancel() branches on `is _DETACHED`
        assert clone._state is _DETACHED
        assert clone.pending
        assert clone.cancel()
        assert clone.cancelled


class TestSimulator:
    def test_restored_run_fires_identical_sequence(self):
        sim_a = Simulator(seed=3)
        for i, delay in enumerate([1.0, 2.5, 2.5, 7.0]):
            sim_a.schedule(delay, _noop, i, label=f"ev-{i}")
        sim_b = pickle.loads(pickle.dumps(sim_a))
        sim_a.run(until=10.0)
        sim_b.run(until=10.0)
        assert sim_a.now == sim_b.now
        assert sim_a._seq == sim_b._seq
        assert sim_a._events_fired == sim_b._events_fired

    def test_refuses_to_pickle_mid_run(self):
        sim = Simulator(seed=3)
        sim.schedule(1.0, lambda: None)
        sim._running = True
        try:
            with pytest.raises(SchedulingError):
                pickle.dumps(sim)
        finally:
            sim._running = False

    def test_pool_ids_rebuilt_for_restoring_process(self):
        sim = Simulator(seed=3)
        sim.schedule(0.5, lambda: None)
        sim.run(until=1.0)
        blob = pickle.dumps(sim)
        old = os.environ.get("REPRO_POOL_DEBUG")
        os.environ["REPRO_POOL_DEBUG"] = "1"
        try:
            sim2 = pickle.loads(blob)
        finally:
            if old is None:
                del os.environ["REPRO_POOL_DEBUG"]
            else:
                os.environ["REPRO_POOL_DEBUG"] = old
        assert sim2._pool_debug
        # rebuilt from *this* process's object identities, never the
        # snapshotting process's meaningless id() values
        assert sim2._pool_ids == {id(h) for h in sim2._handle_pool}


class TestRngRegistry:
    def test_cached_stream_references_stay_shared(self):
        reg = RngRegistry(99)
        stream = reg.stream("transport.latency")
        [stream.random() for _ in range(5)]
        reg2, stream2 = pickle.loads(pickle.dumps((reg, stream)))
        # a component that cached the stream object must keep drawing
        # from the registry's sequence after restore
        assert reg2.stream("transport.latency") is stream2
        assert stream2.random() == stream.random()

    def test_unnamed_streams_created_identically_after_restore(self):
        reg = RngRegistry(99)
        reg2 = pickle.loads(pickle.dumps(reg))
        assert reg2.stream("fresh").random() == reg.stream("fresh").random()


class TestJxtaID:
    def test_urn_cache_and_intern_key_are_dropped(self):
        table = IdInternTable()
        jid = pid(17)
        urn = jid.urn()  # populates _urn
        table.intern(jid)  # populates _intern
        clone = pickle.loads(pickle.dumps(jid))
        assert clone == jid
        for slot in ("_urn", "_intern"):
            assert not hasattr(clone, slot)
        assert clone.urn() == urn

    def test_pickle_bytes_independent_of_cache_population(self):
        fresh = pid(17)
        cached = pid(17)
        cached.urn()
        IdInternTable().intern(cached)
        assert pickle.dumps(fresh) == pickle.dumps(cached)


class TestNetwork:
    def test_env_pool_ids_rebuilt_on_restore(self):
        sim = Simulator(seed=11)
        net = Network(sim, latency=ConstantLatency(0.001))
        blob = pickle.dumps(net)
        old = os.environ.get("REPRO_POOL_DEBUG")
        os.environ["REPRO_POOL_DEBUG"] = "1"
        try:
            net2 = pickle.loads(blob)
        finally:
            if old is None:
                del os.environ["REPRO_POOL_DEBUG"]
            else:
                os.environ["REPRO_POOL_DEBUG"] = old
        assert net2._pool_debug
        assert net2._env_pool_ids == {id(e) for e in net2._envelope_pool}
        # the restored network's cached bound methods point at the
        # restored simulator (memo sharing), not the original
        assert net2.sim is not sim


class TestAdvertisement:
    def test_size_memo_dropped_and_recomputed(self):
        adv = rdv_adv(3)
        size = adv.size_bytes()  # populates _size_cache
        assert "_size_cache" in adv.__dict__
        clone = pickle.loads(pickle.dumps(adv))
        assert "_size_cache" not in clone.__dict__
        assert clone.size_bytes() == size

    def test_pickle_bytes_independent_of_size_memo(self):
        fresh = rdv_adv(3)
        queried = rdv_adv(3)
        queried.size_bytes()
        assert pickle.dumps(fresh) == pickle.dumps(queried)


class TestPeerView:
    def _view(self):
        view = PeerView(rdv_adv(50))
        for n in (10, 30, 70):
            view.upsert(rdv_adv(n), now=0.0)
        return view

    def test_ordered_view_memo_dropped_and_recomputed(self):
        view = self._view()
        ordered = view.ordered_ids()  # populates _ordered_view
        assert view._ordered_view is not None
        clone = pickle.loads(pickle.dumps(view))
        assert clone._ordered_view is None
        assert clone.ordered_ids() == ordered

    def test_entry_pool_not_carried(self):
        view = self._view()
        view.remove(pid(30), now=1.0)  # recycles the entry into the pool
        assert view._entry_pool
        clone = pickle.loads(pickle.dumps(view))
        assert clone._entry_pool == []
        # membership and counters round-trip exactly
        assert clone.ordered_ids() == view.ordered_ids()
        assert (clone.adds, clone.removes) == (view.adds, view.removes)

    def test_pickle_bytes_independent_of_query_history(self):
        quiet = self._view()
        queried = self._view()
        queried.ordered_ids()
        assert pickle.dumps(quiet) == pickle.dumps(queried)
