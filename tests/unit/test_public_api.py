"""The public API surface: every declared export resolves."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.advertisement",
    "repro.analysis",
    "repro.baselines",
    "repro.deploy",
    "repro.discovery",
    "repro.endpoint",
    "repro.ids",
    "repro.metrics",
    "repro.network",
    "repro.peergroup",
    "repro.peerinfo",
    "repro.pipes",
    "repro.rendezvous",
    "repro.resolver",
    "repro.sim",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_all_exports_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{name} declares no __all__"
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_quickstart_symbols():
    # the symbols the README quickstart depends on
    for symbol in (
        "Simulator", "Network", "PlatformConfig", "OverlayDescription",
        "build_overlay", "MINUTES",
    ):
        assert hasattr(repro, symbol)


def test_every_module_has_a_docstring():
    import pkgutil

    missing = []
    for pkg_name in PACKAGES:
        package = importlib.import_module(pkg_name)
        if not package.__doc__:
            missing.append(pkg_name)
        for info in pkgutil.iter_modules(getattr(package, "__path__", [])):
            module = importlib.import_module(f"{pkg_name}.{info.name}")
            if not module.__doc__:
                missing.append(module.__name__)
    assert not missing, f"modules without docstrings: {missing}"
