"""Unit tests for the named RNG registry."""

from repro.sim import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_distinct_names_give_distinct_seeds(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_distinct_masters_give_distinct_seeds(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit_range(self):
        s = derive_seed(123, "stream")
        assert 0 <= s < 2**64


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        reg = RngRegistry(7)
        assert reg.stream("x") is reg.stream("x")

    def test_streams_independent_of_creation_order(self):
        r1 = RngRegistry(7)
        a_first = [r1.stream("a").random() for _ in range(3)]

        r2 = RngRegistry(7)
        r2.stream("b").random()  # touch another stream first
        a_second = [r2.stream("a").random() for _ in range(3)]
        assert a_first == a_second

    def test_fork_is_deterministic(self):
        a = RngRegistry(7).fork("peer-1").stream("s").random()
        b = RngRegistry(7).fork("peer-1").stream("s").random()
        assert a == b

    def test_fork_namespaces_differ(self):
        root = RngRegistry(7)
        a = root.fork("peer-1").stream("s").random()
        b = root.fork("peer-2").stream("s").random()
        assert a != b

    def test_contains(self):
        reg = RngRegistry(0)
        assert "x" not in reg
        reg.stream("x")
        assert "x" in reg
