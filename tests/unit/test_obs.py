"""Unit tests: metrics registry, timeline tracer, observability hub."""

import json

import pytest

from repro.network import Network
from repro.obs import (
    Histogram,
    MetricsRegistry,
    Observability,
    ObsSession,
    TimelineTracer,
    activate,
    current,
    deactivate,
    enable_observability,
    session,
)
from repro.sim import Simulator


class TestHistogram:
    def test_bucketing_and_overflow(self):
        h = Histogram(edges=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]
        assert h.overflow == 1
        assert h.count == 4
        assert h.min == 0.5 and h.max == 100.0

    def test_edge_values_go_to_lower_bucket(self):
        # buckets are (prev, edge]: an observation equal to an upper
        # edge lands in that bucket, not the next one
        h = Histogram(edges=(1.0, 2.0))
        h.observe(1.0)
        assert h.counts == [1, 0]

    def test_merge_requires_identical_edges(self):
        a = Histogram(edges=(1.0, 2.0))
        b = Histogram(edges=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_mean(self):
        h = Histogram(edges=(10.0,))
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.mean == pytest.approx(2.0)

    def test_quantile_bounds_clamped_by_observed_extrema(self):
        h = Histogram(edges=(1.0, 10.0, 100.0))
        h.observe(5.0)
        h.observe(6.0)
        lo, hi = h.quantile_bounds(0.5)
        # both samples sit in the (1, 10] bucket, but the observed
        # min/max tighten the bound
        assert lo == 5.0
        assert hi == 6.0

    def test_snapshot_round_trips_through_json(self):
        h = Histogram(edges=(1.0, 2.0))
        h.observe(0.5)
        snap = h.snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=())
        with pytest.raises(ValueError):
            Histogram(edges=(2.0, 1.0))


class TestMetricsRegistry:
    def test_count_and_counter(self):
        r = MetricsRegistry()
        r.count("peerview", "probe.sent")
        r.count("peerview", "probe.sent", 2)
        assert r.counter("peerview", "probe.sent") == 3
        assert r.counter("peerview", "missing") == 0

    def test_gauge_last_write_wins(self):
        r = MetricsRegistry()
        r.gauge("peerview", "size", 3.0)
        r.gauge("peerview", "size", 5.0)
        assert r.snapshot()["gauges"] == {"peerview.size": 5.0}

    def test_snapshot_keys_sorted_and_flattened(self):
        r = MetricsRegistry()
        r.count("resolver", "query.sent")
        r.count("discovery", "publish")
        assert list(r.snapshot()["counters"]) == [
            "discovery.publish", "resolver.query.sent",
        ]

    def test_merge_adds_counters_and_merges_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("lease", "grant", 2)
        b.count("lease", "grant", 3)
        a.observe("endpoint", "delay", 0.002)
        b.observe("endpoint", "delay", 0.004)
        a.merge(b)
        assert a.counter("lease", "grant") == 5
        assert a.histogram("endpoint", "delay").count == 2


class TestTimelineTracer:
    def test_ring_buffer_drops_oldest_and_counts(self):
        tr = TimelineTracer(capacity=3)
        for i in range(5):
            tr.record(float(i), "peerview", f"e{i}")
        assert len(tr) == 3
        assert tr.dropped == 2
        assert [e.name for e in tr.events] == ["e2", "e3", "e4"]

    def test_category_filter(self):
        tr = TimelineTracer(categories=("peerview",))
        tr.record(0.0, "peerview", "probe.sent")
        tr.record(0.0, "discovery", "publish")
        assert [e.cat for e in tr.events] == ["peerview"]
        assert tr.dropped == 0  # filtered events are not "drops"

    def test_jsonl_lines_are_canonical(self):
        tr = TimelineTracer()
        tr.record(1.5, "lease", "grant", "tcp://a:1", {"edge": "tcp://b:1"})
        (line,) = tr.to_jsonl_lines()
        assert line == (
            '{"actor":"tcp://a:1","args":{"edge":"tcp://b:1"},'
            '"cat":"lease","name":"grant","t":1.5}'
        )

    def test_chrome_trace_shape(self):
        tr = TimelineTracer()
        tr.record(0.001, "peerview", "probe.sent", "tcp://a:1")
        tr.record(0.002, "peerview", "probe.recv", "tcp://b:1")
        trace = tr.to_chrome_trace()
        events = trace["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        metas = [e for e in events if e["ph"] == "M"]
        assert [e["ts"] for e in instants] == [1000, 2000]  # microseconds
        assert {e["tid"] for e in instants} == {1, 2}
        assert {m["args"]["name"] for m in metas} == {
            "tcp://a:1", "tcp://b:1",
        }

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            TimelineTracer(capacity=0)


class TestObservabilityHub:
    def test_inactive_without_sinks(self):
        assert Observability().active is False
        assert Observability(metrics=MetricsRegistry()).active is True

    def test_enable_disable(self):
        obs = Observability(metrics=MetricsRegistry())
        obs.disable()
        assert obs.active is False
        obs.enable()
        assert obs.active is True

    def test_attach_refuses_double_attachment(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        enable_observability(net)
        with pytest.raises(RuntimeError):
            enable_observability(net)

    def test_detach_restores_network_and_kernel_hook(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        obs = enable_observability(net, trace=True, trace_kernel=True)
        sim.schedule(1.0, lambda: None, label="tick")
        sim.run()
        assert [e.name for e in obs.tracer.events] == ["tick"]
        obs.detach()
        assert net.obs is None
        sim.schedule(2.0, lambda: None, label="tock")
        sim.run()
        assert [e.name for e in obs.tracer.events] == ["tick"]

    def test_event_counts_and_traces(self):
        obs = Observability(
            metrics=MetricsRegistry(), tracer=TimelineTracer()
        )
        obs.event(1.0, "peerview", "probe.sent", "tcp://a:1", dst="tcp://b:1")
        assert obs.metrics.counter("peerview", "probe.sent") == 1
        (e,) = obs.tracer.events
        assert (e.cat, e.name, e.args) == (
            "peerview", "probe.sent", {"dst": "tcp://b:1"},
        )


class TestObsSession:
    def test_adopts_networks_created_inside(self):
        with session(metrics=True) as s:
            sim = Simulator(seed=1)
            net = Network(sim)
        assert len(s.hubs) == 1
        assert s.hubs[0].network is net
        # and networks created after the session ends are untouched
        assert Network(Simulator(seed=2)).obs is None

    def test_activate_deactivate_order_enforced(self):
        a, b = ObsSession(), ObsSession()
        activate(a)
        activate(b)
        with pytest.raises(RuntimeError):
            deactivate(a)
        deactivate(b)
        deactivate(a)
        with pytest.raises(RuntimeError):
            deactivate(a)

    def test_current_reflects_stack(self):
        assert current() is None
        with session(metrics=True) as s:
            assert current() is s
        assert current() is None

    def test_merged_snapshot_spans_networks(self):
        with session(metrics=True) as s:
            for seed in (1, 2):
                sim = Simulator(seed=seed)
                net = Network(sim)
                net.obs.metrics.count("peerview", "probe.sent")
        snap = s.merged_snapshot()
        assert snap["counters"]["peerview.probe.sent"] == 2
