"""Unit tests for the local advertisement cache."""

import pytest

from repro.advertisement import AdvertisementCache, FakeAdvertisement


def adv(name, payload=""):
    return FakeAdvertisement(name, payload)


class TestPublish:
    def test_publish_and_get(self):
        cache = AdvertisementCache()
        a = adv("x")
        cache.publish(a, now=0.0, lifetime=100.0)
        assert cache.get(a, now=50.0).adv == a
        assert a in cache

    def test_lifetime_expiry(self):
        cache = AdvertisementCache()
        a = adv("x")
        cache.publish(a, now=0.0, lifetime=100.0)
        assert cache.get(a, now=100.0) is None

    def test_republish_resets_expiry(self):
        cache = AdvertisementCache()
        a = adv("x")
        cache.publish(a, now=0.0, lifetime=100.0)
        cache.publish(a, now=90.0, lifetime=100.0)
        assert cache.get(a, now=150.0) is not None
        assert len(cache) == 1

    def test_nonpositive_lifetime_rejected(self):
        with pytest.raises(ValueError):
            AdvertisementCache().publish(adv("x"), now=0.0, lifetime=0.0)


class TestRemote:
    def test_store_remote_uses_expiration(self):
        cache = AdvertisementCache()
        a = adv("x")
        cache.store_remote(a, now=0.0, expiration=10.0)
        assert cache.get(a, now=5.0) is not None
        assert cache.get(a, now=10.0) is None

    def test_remote_does_not_clobber_local(self):
        cache = AdvertisementCache()
        a = adv("x")
        cache.publish(a, now=0.0, lifetime=1000.0)
        entry = cache.store_remote(a, now=1.0, expiration=10.0)
        assert entry.local
        assert cache.get(a, now=500.0) is not None

    def test_remote_replaces_expired_local(self):
        cache = AdvertisementCache()
        a = adv("x")
        cache.publish(a, now=0.0, lifetime=10.0)
        entry = cache.store_remote(a, now=20.0, expiration=10.0)
        assert not entry.local

    def test_nonpositive_expiration_rejected(self):
        with pytest.raises(ValueError):
            AdvertisementCache().store_remote(adv("x"), now=0.0, expiration=0.0)


class TestMaintenance:
    def test_purge_expired(self):
        cache = AdvertisementCache()
        cache.publish(adv("a"), now=0.0, lifetime=10.0)
        cache.publish(adv("b"), now=0.0, lifetime=100.0)
        dropped = cache.purge_expired(now=50.0)
        assert dropped == 1
        assert len(cache) == 1
        assert cache.purged == 1

    def test_flush_clears_everything(self):
        cache = AdvertisementCache()
        for i in range(5):
            cache.publish(adv(f"a{i}"), now=0.0)
        assert cache.flush() == 5
        assert len(cache) == 0

    def test_remove(self):
        cache = AdvertisementCache()
        a = adv("x")
        cache.publish(a, now=0.0)
        assert cache.remove(a)
        assert not cache.remove(a)


class TestSearch:
    def _loaded(self):
        cache = AdvertisementCache()
        cache.publish(adv("alpha"), now=0.0, lifetime=1000.0)
        cache.publish(adv("alphabet"), now=0.0, lifetime=1000.0)
        cache.publish(adv("beta"), now=0.0, lifetime=1000.0)
        return cache

    def test_exact_match(self):
        found = self._loaded().search(
            "repro:FakeAdvertisement", "Name", "alpha", now=1.0
        )
        assert [a.name for a in found] == ["alpha"]

    def test_wildcard_match(self):
        found = self._loaded().search(
            "repro:FakeAdvertisement", "Name", "alpha*", now=1.0
        )
        assert sorted(a.name for a in found) == ["alpha", "alphabet"]

    def test_type_only_query(self):
        found = self._loaded().search(
            "repro:FakeAdvertisement", None, None, now=1.0
        )
        assert len(found) == 3

    def test_any_type_query(self):
        found = self._loaded().search(None, None, None, now=1.0)
        assert len(found) == 3

    def test_wrong_type_returns_nothing(self):
        assert self._loaded().search("jxta:PA", "Name", "alpha", now=1.0) == []

    def test_expired_excluded_from_search(self):
        cache = AdvertisementCache()
        cache.publish(adv("x"), now=0.0, lifetime=10.0)
        assert cache.search(None, None, None, now=20.0) == []

    def test_limit(self):
        found = self._loaded().search(
            "repro:FakeAdvertisement", None, None, now=1.0, limit=2
        )
        assert len(found) == 2

    def test_entries_iterator_filters_by_now(self):
        cache = AdvertisementCache()
        cache.publish(adv("a"), now=0.0, lifetime=10.0)
        cache.publish(adv("b"), now=0.0, lifetime=100.0)
        assert len(list(cache.entries(now=50.0))) == 1
        assert len(list(cache.entries())) == 2


class TestIndexMaintenance:
    """White-box checks of the query indexes added for paper-scale runs."""

    def _rdv(self, n, name):
        from repro.advertisement.rdvadv import RdvAdvertisement
        from repro.ids.jxtaid import NET_PEER_GROUP_ID, PeerID

        return RdvAdvertisement(
            rdv_peer_id=PeerID.from_int(NET_PEER_GROUP_ID, n),
            group_id=NET_PEER_GROUP_ID,
            name=name,
        )

    def test_overwrite_reindexes_changed_fields(self):
        # same unique key (peer, group), different indexed Name
        cache = AdvertisementCache()
        cache.publish(self._rdv(1, "alpha"), now=0.0)
        cache.publish(self._rdv(1, "beta"), now=0.0)
        assert len(cache) == 1
        t = self._rdv(1, "beta").ADV_TYPE
        assert [a.name for a in cache.search(t, "Name", "beta", now=1.0)] == ["beta"]
        assert cache.search(t, "Name", "alpha", now=1.0) == []

    def test_results_in_insertion_order_with_limit(self):
        cache = AdvertisementCache()
        for name in ("c", "a", "b"):
            cache.publish(adv(name), now=0.0)
        found = cache.search(None, None, None, now=1.0, limit=2)
        assert [a.name for a in found] == ["c", "a"]
        found = cache.search("repro:FakeAdvertisement", "Name", "*", now=1.0)
        assert [a.name for a in found] == ["c", "a", "b"]

    def test_remove_then_reinsert_moves_to_end(self):
        cache = AdvertisementCache()
        for name in ("a", "b", "c"):
            cache.publish(adv(name), now=0.0)
        cache.remove(adv("a"))
        cache.publish(adv("a"), now=0.0)
        found = cache.search(None, None, None, now=1.0)
        assert [a.name for a in found] == ["b", "c", "a"]

    def test_incremental_purge_skips_stale_heap_records(self):
        cache = AdvertisementCache()
        cache.publish(adv("x"), now=0.0, lifetime=10.0)
        cache.publish(adv("x"), now=0.0, lifetime=1000.0)  # refresh
        # the first record expires at t=10 but the entry was replaced;
        # the stale record must not purge (or double-count) the live one
        assert cache.purge_expired(now=20.0) == 0
        assert cache.get(adv("x"), now=20.0) is not None
        assert cache.purge_expired(now=2000.0) == 1
        assert len(cache) == 0

    def test_flush_clears_indexes(self):
        cache = AdvertisementCache()
        cache.publish(adv("a"), now=0.0)
        assert cache.flush() == 1
        assert cache.search(None, None, None, now=0.0) == []
        assert cache.search("repro:FakeAdvertisement", "Name", "a", now=0.0) == []
        cache.publish(adv("a"), now=0.0)
        assert [a.name for a in cache.search(None, "Name", "a", now=0.0)] == ["a"]
