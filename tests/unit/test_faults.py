"""Unit tests: fault actions, scenario engine, invariant checker."""

import pytest

from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.faults import (
    FAULT_FREE,
    ChurnWindow,
    ClockSkew,
    CorruptPeerView,
    CrashPeer,
    DuplicateWindow,
    HealSites,
    InvariantChecker,
    InvariantViolationError,
    LossWindow,
    PartitionSites,
    ReorderWindow,
    RestartPeer,
    Scenario,
    ScenarioEngine,
    peers_of,
)
from repro.metrics import EventLog
from repro.network import Network
from repro.network.transport import FaultDecision
from repro.sim import MINUTES, Simulator


def deploy(r=6, seed=1, duration_warmup=None):
    sim = Simulator(seed=seed)
    network = Network(sim)
    overlay = build_overlay(
        sim, network, PlatformConfig(),
        OverlayDescription(rendezvous_count=r, topology="chain"),
    )
    return sim, network, overlay


def engine_for(sim, network, overlay, scenario, log=None):
    return ScenarioEngine(sim, network, peers_of(overlay), scenario, log=log)


class TestActionValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            CrashPeer(at=-1.0, peer="rdv-0")

    def test_window_needs_positive_duration(self):
        with pytest.raises(ValueError):
            LossWindow(at=0.0, duration=0.0, rate=0.5)

    def test_loss_rate_bounds(self):
        with pytest.raises(ValueError):
            LossWindow(at=0.0, duration=1.0, rate=0.0)
        with pytest.raises(ValueError):
            LossWindow(at=0.0, duration=1.0, rate=1.5)

    def test_duplicate_copies_bounds(self):
        with pytest.raises(ValueError):
            DuplicateWindow(at=0.0, duration=1.0, probability=0.5, copies=0)

    def test_reorder_delay_bounds(self):
        with pytest.raises(ValueError):
            ReorderWindow(at=0.0, duration=1.0, max_extra_delay=0.0)

    def test_clock_skew_factor_positive(self):
        with pytest.raises(ValueError):
            ClockSkew(at=0.0, peer="rdv-0", factor=0.0)

    def test_corruption_mode_checked(self):
        with pytest.raises(ValueError):
            CorruptPeerView(at=0.0, peer="rdv-0", mode="scramble")

    def test_churn_window_params(self):
        with pytest.raises(ValueError):
            ChurnWindow(at=0.0, duration=10.0, mean_session=0.0)

    def test_scenario_needs_name_and_actions(self):
        with pytest.raises(ValueError):
            Scenario(name="")
        with pytest.raises(TypeError):
            Scenario(name="x", actions=("not-an-action",))

    def test_scenario_horizon_covers_windows(self):
        s = Scenario(
            name="s",
            actions=(
                LossWindow(at=10.0, duration=20.0, rate=0.5),
                CrashPeer(at=50.0, peer="rdv-1"),
            ),
        )
        assert s.horizon == 50.0
        assert not s.fault_free()
        assert FAULT_FREE.fault_free()


class TestScenarioEngine:
    def test_crash_and_restart_fire_at_scheduled_times(self):
        sim, network, overlay = deploy()
        scenario = Scenario(
            name="cr",
            actions=(
                CrashPeer(at=2 * MINUTES, peer="rdv-2"),
                RestartPeer(at=4 * MINUTES, peer="rdv-2"),
            ),
        )
        engine = engine_for(sim, network, overlay, scenario)
        overlay.start()
        engine.start()
        target = overlay.rendezvous[2]
        sim.run(until=3 * MINUTES)
        assert not target.running
        sim.run(until=5 * MINUTES)
        assert target.running
        assert [a.kind for _, a in engine.applied] == ["CrashPeer", "RestartPeer"]

    def test_applied_actions_recorded_in_log(self):
        sim, network, overlay = deploy()
        log = EventLog()
        scenario = Scenario(
            name="p",
            actions=(
                PartitionSites(at=60.0, site_a="rennes", site_b="sophia"),
                HealSites(at=120.0, site_a="rennes", site_b="sophia"),
            ),
        )
        engine = engine_for(sim, network, overlay, scenario, log=log)
        overlay.start()
        engine.start()
        sim.run(until=90.0)
        assert network.is_partitioned("rennes", "sophia")
        sim.run(until=150.0)
        assert not network.is_partitioned("rennes", "sophia")
        kinds = [r.kind for r in log.records()]
        assert "fault.PartitionSites" in kinds
        assert "fault.HealSites" in kinds

    def test_loss_window_drops_only_inside_window(self):
        sim, network, overlay = deploy()
        scenario = Scenario(
            name="loss",
            actions=(LossWindow(at=5 * MINUTES, duration=5 * MINUTES, rate=1.0),),
        )
        engine = engine_for(sim, network, overlay, scenario)
        overlay.start()
        engine.start()
        sim.run(until=4 * MINUTES)
        assert network.faulted_drops == 0
        sim.run(until=9 * MINUTES)
        in_window = network.faulted_drops
        assert in_window > 0
        sim.run(until=11 * MINUTES)
        assert engine.controller.quiescent(sim.now)
        # overlay recovers: new sends are not dropped by faults
        before = network.faulted_drops
        sim.run(until=15 * MINUTES)
        assert network.faulted_drops == before

    def test_duplicate_window_duplicates_messages(self):
        sim, network, overlay = deploy()
        scenario = Scenario(
            name="dup",
            actions=(
                DuplicateWindow(
                    at=60.0, duration=5 * MINUTES, probability=1.0, copies=2
                ),
            ),
        )
        engine = engine_for(sim, network, overlay, scenario)
        overlay.start()
        engine.start()
        sim.run(until=3 * MINUTES)
        assert network.faulted_duplicates > 0

    def test_clock_skew_scales_and_restores_interval(self):
        sim, network, overlay = deploy()
        base = PlatformConfig().peerview_interval
        scenario = Scenario(
            name="skew",
            actions=(
                ClockSkew(at=60.0, peer="rdv-1", factor=3.0),
                ClockSkew(at=300.0, peer="rdv-1", factor=1.0),
            ),
        )
        engine = engine_for(sim, network, overlay, scenario)
        overlay.start()
        engine.start()
        task = overlay.rendezvous[1].peerview_protocol._task
        sim.run(until=120.0)
        assert task.interval == base * 3.0
        sim.run(until=360.0)
        assert task.interval == base

    def test_churn_window_revives_everyone_at_end(self):
        sim, network, overlay = deploy(r=8)
        scenario = Scenario(
            name="churn",
            actions=(
                ChurnWindow(
                    at=2 * MINUTES, duration=10 * MINUTES,
                    mean_session=2 * MINUTES, mean_downtime=1 * MINUTES,
                    targets=("rdv-2", "rdv-3", "rdv-4"),
                ),
            ),
        )
        engine = engine_for(sim, network, overlay, scenario)
        overlay.start()
        engine.start()
        sim.run(until=20 * MINUTES)
        churn = engine.context.churn_processes[0]
        assert churn.kill_count > 0
        assert all(p.running for p in overlay.rendezvous)

    def test_unknown_peer_surfaces_clearly(self):
        sim, network, overlay = deploy()
        scenario = Scenario(
            name="bad", actions=(CrashPeer(at=10.0, peer="rdv-99"),)
        )
        engine = engine_for(sim, network, overlay, scenario)
        overlay.start()
        engine.start()
        with pytest.raises(ValueError, match="rdv-99"):
            sim.run(until=60.0)

    def test_double_controller_installation_rejected(self):
        sim, network, overlay = deploy()
        engine_for(sim, network, overlay, FAULT_FREE).start()
        with pytest.raises(RuntimeError):
            engine_for(sim, network, overlay, FAULT_FREE).start()

    def test_stop_uninstalls_controller(self):
        sim, network, overlay = deploy()
        engine = engine_for(sim, network, overlay, FAULT_FREE)
        engine.start()
        assert network.fault_controller is engine.controller
        engine.stop()
        assert network.fault_controller is None


class TestFaultDecision:
    def test_invalid_decisions_rejected(self):
        with pytest.raises(ValueError):
            FaultDecision(duplicates=-1)
        with pytest.raises(ValueError):
            FaultDecision(extra_delay=-0.5)


class TestInvariantChecker:
    def run_with(self, scenario, r=6, duration=12 * MINUTES, seed=2, **kwargs):
        sim, network, overlay = deploy(r=r, seed=seed)
        log = EventLog()
        engine = engine_for(sim, network, overlay, scenario, log=log)
        checker = InvariantChecker(
            sim, overlay.rendezvous, log=log, **kwargs
        )
        overlay.start()
        engine.start()
        sim.run(until=duration)
        return checker, log, overlay

    def test_clean_run_reports_zero_violations(self):
        checker, log, _ = self.run_with(FAULT_FREE)
        assert checker.ok
        assert checker.rounds_checked > 0
        assert "OK" in checker.report()

    def test_convergence_metric_emitted(self):
        checker, log, overlay = self.run_with(FAULT_FREE)
        records = log.records(kind="invariant.convergence")
        assert records
        # converged overlay: final ratios reach 1.0
        assert records[-1].value == pytest.approx(1.0)

    def test_order_corruption_flagged(self):
        scenario = Scenario(
            name="corrupt",
            actions=(CorruptPeerView(at=6 * MINUTES, peer="rdv-0", mode="swap"),),
        )
        checker, log, _ = self.run_with(scenario)
        assert not checker.ok
        assert "peerview.total-order" in checker.summary()
        assert log.records(kind="invariant.violation")
        assert "VIOLATED" in checker.report()

    def test_duplicate_corruption_flagged(self):
        scenario = Scenario(
            name="corrupt-dup",
            actions=(
                CorruptPeerView(at=6 * MINUTES, peer="rdv-1", mode="duplicate"),
            ),
        )
        checker, _, _ = self.run_with(scenario)
        kinds = checker.summary()
        assert "peerview.consistency" in kinds or "peerview.total-order" in kinds

    def test_raise_mode_aborts_the_run(self):
        scenario = Scenario(
            name="corrupt",
            actions=(CorruptPeerView(at=6 * MINUTES, peer="rdv-0", mode="swap"),),
        )
        with pytest.raises(InvariantViolationError):
            self.run_with(scenario, raise_on_violation=True)

    def test_check_all_on_demand(self):
        sim, network, overlay = deploy()
        checker = InvariantChecker(sim, overlay.rendezvous)
        overlay.start()
        sim.run(until=5 * MINUTES)
        assert checker.check_all() == []
        overlay.rendezvous[0].view._order.reverse()
        overlay.rendezvous[0].view.invalidate_ordered_view()
        found = checker.check_all()
        assert any(v.invariant == "peerview.total-order" for v in found)

    def test_detach_stops_checking(self):
        sim, network, overlay = deploy()
        checker = InvariantChecker(sim, overlay.rendezvous)
        overlay.start()
        sim.run(until=3 * MINUTES)
        seen = checker.rounds_checked
        checker.detach()
        sim.run(until=6 * MINUTES)
        assert checker.rounds_checked == seen

    def test_crashed_peer_not_checked(self):
        sim, network, overlay = deploy()
        scenario = Scenario(
            name="crash", actions=(CrashPeer(at=2 * MINUTES, peer="rdv-0"),)
        )
        log = EventLog()
        engine = engine_for(sim, network, overlay, scenario, log=log)
        checker = InvariantChecker(sim, overlay.rendezvous, log=log)
        overlay.start()
        engine.start()
        sim.run(until=10 * MINUTES)
        assert checker.ok
        late = [
            r
            for r in log.records(kind="invariant.convergence", observer="rdv-0")
            if r.time > 3 * MINUTES
        ]
        assert late == []
