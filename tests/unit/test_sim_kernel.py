"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    MINUTES,
    SECONDS,
    SchedulingError,
    SimulationLimitExceeded,
    Simulator,
    format_time,
)
from repro.sim.clock import Clock


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Clock(-1.0)

    def test_advance_forward(self):
        c = Clock()
        c._advance_to(3.5)
        assert c.now == 3.5

    def test_advance_backwards_rejected(self):
        c = Clock(10.0)
        with pytest.raises(ValueError):
            c._advance_to(9.0)

    def test_advance_to_same_time_allowed(self):
        c = Clock(10.0)
        c._advance_to(10.0)
        assert c.now == 10.0


class TestFormatTime:
    def test_milliseconds(self):
        assert format_time(0.012) == "12.000ms"

    def test_seconds(self):
        assert format_time(12.5) == "12.500s"

    def test_minutes(self):
        assert format_time(17 * MINUTES + 3.25) == "17m03.250s"

    def test_negative(self):
        assert format_time(-2.0) == "-2.000s"


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_fifo(self):
        sim = Simulator()
        fired = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(4.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule_at(1.0, lambda: None)

    def test_nested_scheduling_from_event(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(2.0, inner)

        def inner():
            fired.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 3.0)]

    def test_zero_delay_event_fires_at_now(self):
        sim = Simulator()
        times = []
        sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [1.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, fired.append, "x")
        assert h.cancel()
        sim.run()
        assert fired == []
        assert h.cancelled and not h.fired

    def test_cancel_after_fire_returns_false(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.run()
        assert h.fired
        assert not h.cancel()

    def test_double_cancel_returns_false(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        assert h.cancel()
        assert not h.cancel()

    def test_pending_property(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        assert h.pending
        sim.run()
        assert not h.pending


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0

    def test_run_until_advances_clock_when_queue_empty(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_sliced_runs_behave_like_one_run(self):
        def build():
            s = Simulator(seed=7)
            out = []
            for i in range(10):
                s.schedule(float(i), out.append, i)
            return s, out

        s1, out1 = build()
        s1.run()
        s2, out2 = build()
        for t in (2.5, 5.0, 20.0):
            s2.run(until=t)
        assert out1 == out2

    def test_event_exactly_at_until_boundary_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "edge")
        sim.run(until=5.0)
        assert fired == ["edge"]

    def test_stop_requests_early_return(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a"]
        sim.run()
        assert fired == ["a", "b"]


class TestLimits:
    def test_max_events_guard(self):
        sim = Simulator(max_events=10)

        def loop():
            sim.schedule(1.0, loop)

        sim.schedule(1.0, loop)
        with pytest.raises(SimulationLimitExceeded):
            sim.run()

    def test_events_fired_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_fired == 5

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        h = sim.schedule(2.0, lambda: None)
        h.cancel()
        assert sim.pending_events == 1


class TestTraceHooks:
    def test_hook_sees_each_fire(self):
        sim = Simulator()
        seen = []
        sim.add_trace_hook(lambda t, phase, h: seen.append((t, phase, h.label)))
        sim.schedule(1.0, lambda: None, label="ping")
        sim.run()
        assert seen == [(1.0, "fire", "ping")]

    def test_remove_without_phases_drops_whole_registration(self):
        sim = Simulator()
        seen = []
        hook = lambda t, phase, h: seen.append((phase, h.label))  # noqa: E731
        sim.add_trace_hook(hook, phases=("fire", "done"))
        sim.remove_trace_hook(hook)
        sim.schedule(1.0, lambda: None, label="ping")
        sim.run()
        assert seen == []

    def test_remove_named_phase_keeps_remainder(self):
        sim = Simulator()
        seen = []
        hook = lambda t, phase, h: seen.append((phase, h.label))  # noqa: E731
        sim.add_trace_hook(hook, phases=("fire", "done"))
        sim.remove_trace_hook(hook, phases=("done",))
        sim.schedule(1.0, lambda: None, label="ping")
        sim.run()
        # the "fire" half of the registration survives
        assert seen == [("fire", "ping")]

    def test_remove_last_phase_empties_registration(self):
        sim = Simulator()
        seen = []
        hook = lambda t, phase, h: seen.append(phase)  # noqa: E731
        sim.add_trace_hook(hook, phases=("fire",))
        sim.remove_trace_hook(hook, phases=("fire",))
        sim.schedule(1.0, lambda: None, label="ping")
        sim.run()
        assert seen == []
        # the registration is gone, not just muted: re-adding starts fresh
        sim.add_trace_hook(hook, phases=("done",))
        sim.schedule(1.0, lambda: None, label="pong")
        sim.run()
        assert seen == ["done"]

    def test_remove_phase_not_registered_is_noop(self):
        sim = Simulator()
        seen = []
        hook = lambda t, phase, h: seen.append(phase)  # noqa: E731
        sim.add_trace_hook(hook, phases=("fire",))
        sim.remove_trace_hook(hook, phases=("done",))
        sim.schedule(1.0, lambda: None, label="ping")
        sim.run()
        assert seen == ["fire"]

    def test_remove_phases_only_touches_named_hook(self):
        sim = Simulator()
        seen = []
        keep = lambda t, phase, h: seen.append(("keep", phase))  # noqa: E731
        drop = lambda t, phase, h: seen.append(("drop", phase))  # noqa: E731
        sim.add_trace_hook(keep, phases=("fire",))
        sim.add_trace_hook(drop, phases=("fire",))
        sim.remove_trace_hook(drop, phases=("fire",))
        sim.schedule(1.0, lambda: None, label="ping")
        sim.run()
        assert seen == [("keep", "fire")]

    def test_remove_unknown_phase_name_rejected(self):
        sim = Simulator()
        hook = lambda t, phase, h: None  # noqa: E731
        sim.add_trace_hook(hook)
        with pytest.raises(ValueError):
            sim.remove_trace_hook(hook, phases=("bogus",))


class TestSecondsConstant:
    def test_unit_sanity(self):
        assert 30 * SECONDS == 30.0
        assert 20 * MINUTES == 1200.0
