"""Unit tests for the HTTP relay transport."""

import pytest

from repro.advertisement import FakeAdvertisement
from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.endpoint.relay import RelayClient, RelayServer
from repro.network import Network
from repro.sim import MINUTES, SECONDS, Simulator


def build_with_http_edge(seed=14, r=4):
    """Overlay with two TCP edges (publisher + searcher) and one HTTP
    edge."""
    sim = Simulator(seed=seed)
    network = Network(sim)
    overlay = build_overlay(
        sim, network, PlatformConfig(),
        OverlayDescription(rendezvous_count=r, edge_count=2,
                           edge_attachment=[0, 2]),
    )
    http_edge = overlay.group.create_edge(
        overlay.rendezvous[1].node,
        seeds=[overlay.rendezvous[1].address],
        transport="http",
    )
    overlay.start()
    sim.run(until=10 * MINUTES)
    assert overlay.group.property_2_satisfied()
    return sim, overlay, http_edge


class TestRelayAttachment:
    def test_http_edge_advertises_relay_address(self):
        sim, overlay, edge = build_with_http_edge()
        assert edge.lease_client.connected
        relay_rdv = overlay.rendezvous[1]
        assert edge.endpoint.advertised_address == relay_rdv.address
        assert edge.relay_client.attached

    def test_relay_registers_client(self):
        sim, overlay, edge = build_with_http_edge()
        assert overlay.rendezvous[1].relay_server.client_count() == 1

    def test_tcp_edge_advertises_own_address(self):
        sim, overlay, _ = build_with_http_edge()
        tcp_edge = overlay.edges[0]
        assert tcp_edge.endpoint.advertised_address == tcp_edge.endpoint.transport_address

    def test_invalid_transport_rejected(self):
        sim = Simulator(seed=1)
        network = Network(sim)
        overlay = build_overlay(
            sim, network, PlatformConfig(), OverlayDescription(rendezvous_count=1)
        )
        with pytest.raises(ValueError):
            overlay.group.create_edge(
                overlay.rendezvous[0].node,
                seeds=[overlay.rendezvous[0].address],
                transport="carrier-pigeon",
            )


class TestRelayedDiscovery:
    def test_http_edge_can_publish_and_be_found(self):
        sim, overlay, http_edge = build_with_http_edge()
        http_edge.discovery.publish(FakeAdvertisement("behind-nat"))
        sim.run(until=sim.now + 2 * MINUTES)
        results = []
        overlay.edges[0].discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", "behind-nat",
            callback=lambda advs, lat: results.append((advs, lat)),
        )
        sim.run(until=sim.now + 1 * MINUTES)
        assert len(results) == 1
        assert results[0][0][0].name == "behind-nat"

    def test_http_edge_can_search(self):
        sim, overlay, http_edge = build_with_http_edge()
        overlay.edges[0].discovery.publish(FakeAdvertisement("outside"))
        sim.run(until=sim.now + 2 * MINUTES)
        results = []
        http_edge.discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", "outside",
            callback=lambda advs, lat: results.append((advs, lat)),
        )
        sim.run(until=sim.now + 1 * MINUTES)
        assert len(results) == 1

    def test_relayed_inbound_pays_polling_latency(self):
        # query responses to the HTTP searcher wait for the next poll:
        # mean latency must exceed the TCP edge's by a noticeable part
        # of the poll interval
        sim, overlay, http_edge = build_with_http_edge()
        overlay.edges[0].discovery.publish(FakeAdvertisement("latency"))
        sim.run(until=sim.now + 2 * MINUTES)

        latencies = {"http": [], "tcp": []}
        for kind, searcher in (("http", http_edge), ("tcp", overlay.edges[1])):
            for _ in range(10):
                searcher.cache.flush()
                searcher.discovery.get_remote_advertisements(
                    "repro:FakeAdvertisement", "Name", "latency",
                    callback=lambda advs, lat, k=kind: latencies[k].append(lat),
                )
                sim.run(until=sim.now + 30 * SECONDS)
        mean_http = sum(latencies["http"]) / len(latencies["http"])
        mean_tcp = sum(latencies["tcp"]) / len(latencies["tcp"])
        assert mean_http > mean_tcp + 0.2  # ≥ a fair share of the 2 s poll

    def test_queue_drains_through_polls(self):
        sim, overlay, http_edge = build_with_http_edge()
        relay = overlay.rendezvous[1].relay_server
        assert relay.queued >= 0
        before = http_edge.relay_client.messages_received
        overlay.edges[0].discovery.publish(FakeAdvertisement("drain"))
        sim.run(until=sim.now + 2 * MINUTES)
        http_edge.discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", "drain",
            callback=lambda advs, lat: None,
        )
        sim.run(until=sim.now + 1 * MINUTES)
        assert http_edge.relay_client.messages_received > before
        assert relay.queue_length(http_edge.peer_id) == 0


class TestRelayServer:
    def test_queue_overflow_drops(self):
        sim = Simulator(seed=3)
        network = Network(sim)
        overlay = build_overlay(
            sim, network, PlatformConfig(),
            OverlayDescription(rendezvous_count=2),
        )
        edge = overlay.group.create_edge(
            overlay.rendezvous[0].node,
            seeds=[overlay.rendezvous[0].address],
            transport="http",
        )
        overlay.start()
        sim.run(until=5 * MINUTES)
        relay = overlay.rendezvous[0].relay_server
        relay.queue_limit = 3
        # stop polling so the queue fills
        edge.relay_client._poll_task.stop()
        from repro.endpoint.service import EndpointMessage

        rdv = overlay.rendezvous[1]
        for i in range(6):
            rdv.router.add_route(edge.peer_id, [overlay.rendezvous[0].address])
            rdv.endpoint.send_to_peer(
                EndpointMessage(
                    src_peer=rdv.peer_id,
                    dst_peer=edge.peer_id,
                    service_name="svc",
                    service_param="p",
                    body=f"m{i}",
                )
            )
        sim.run(until=sim.now + 10 * SECONDS)
        assert relay.queue_length(edge.peer_id) == 3
        assert relay.dropped_overflow == 3

    def test_detach_restores_direct_addressing(self):
        sim, overlay, edge = build_with_http_edge()
        edge.relay_client.detach()
        assert edge.endpoint.advertised_address == edge.endpoint.transport_address

    def test_bad_constructor_args(self):
        sim = Simulator(seed=1)
        network = Network(sim)
        overlay = build_overlay(
            sim, network, PlatformConfig(), OverlayDescription(rendezvous_count=1)
        )
        rdv = overlay.rendezvous[0]
        with pytest.raises(ValueError):
            RelayServer(rdv.endpoint, "g", queue_limit=0)
        with pytest.raises(ValueError):
            RelayClient(rdv.endpoint, "g", poll_interval=0.0)
