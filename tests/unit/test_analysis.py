"""Unit tests for the shape-analysis helpers."""

import pytest

from repro.analysis import (
    detect_phases,
    find_crossover,
    linear_fit,
    plateau_stats,
    relative_spread,
)
from repro.metrics.series import StepSeries


class TestLinearFit:
    def test_exact_line(self):
        fit = linear_fit([0, 1, 2, 3], [1, 3, 5, 7])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = linear_fit([0, 1], [0, 2])
        assert fit.predict(5) == pytest.approx(10.0)

    def test_noisy_line_has_high_r2(self):
        xs = list(range(20))
        ys = [2 * x + (1 if x % 2 else -1) for x in xs]
        fit = linear_fit(xs, ys)
        assert fit.r_squared > 0.99

    def test_flat_data_r2_is_one(self):
        fit = linear_fit([0, 1, 2], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1])


class TestPlateauStats:
    def test_constant_tail(self):
        series = StepSeries([0.0, 10.0], [0.0, 7.0])
        mean, std = plateau_stats(series, 20.0, 40.0)
        assert mean == pytest.approx(7.0)
        assert std == pytest.approx(0.0)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            plateau_stats(StepSeries([0.0], [1.0]), 10.0, 10.0)


class TestRelativeSpread:
    def test_identical_values(self):
        assert relative_spread([5, 5, 5]) == 0.0

    def test_spread(self):
        assert relative_spread([8, 10, 12]) == pytest.approx(0.4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            relative_spread([])


class TestDetectPhases:
    def _three_phase_series(self):
        # growth to 100 at t=1200, decay to 70 by t=2400, flat after
        times, values = [0.0], [0.0]
        for i in range(1, 25):  # growth: +4 every 50s until 1200
            times.append(i * 50.0)
            values.append(min(100.0, i * 4.2))
        for i in range(1, 13):  # decay 100 -> 70
            times.append(1200.0 + i * 100.0)
            values.append(100.0 - i * 2.5)
        times.append(3000.0)
        values.append(70.0)
        return StepSeries(times, values)

    def test_phases_located(self):
        series = self._three_phase_series()
        phases = detect_phases(series, duration=4000.0)
        assert phases is not None
        assert 1000.0 <= phases.growth_end <= 1400.0
        assert phases.peak == pytest.approx(100.0, abs=1.0)
        assert phases.plateau_mean == pytest.approx(70.0, abs=2.0)
        assert phases.fluctuation_start >= phases.growth_end

    def test_flat_zero_series_returns_none(self):
        assert detect_phases(StepSeries([0.0], [0.0]), 100.0) is None

    def test_monotone_series_fluctuation_is_tail(self):
        series = StepSeries([0.0, 10.0, 20.0], [0.0, 5.0, 9.0])
        phases = detect_phases(series, duration=100.0)
        assert phases is not None
        assert phases.plateau_mean == pytest.approx(9.0, abs=0.5)


class TestCrossover:
    def test_simple_crossover(self):
        xs = [0, 10, 20, 30]
        a = [10, 10, 10, 10]
        b = [20, 15, 10, 8]
        x = find_crossover(xs, a, b)
        assert x == pytest.approx(20.0)

    def test_interpolated_crossover(self):
        xs = [0, 10]
        a = [0, 0]
        b = [5, -5]
        assert find_crossover(xs, a, b) == pytest.approx(5.0)

    def test_no_crossover(self):
        assert find_crossover([0, 1], [0, 0], [1, 1]) is None

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            find_crossover([0, 1], [0], [1, 1])
