"""Unit tests for the range-query extension (§5 future work)."""

import pytest

from repro.advertisement import FakeAdvertisement
from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.discovery.rangequery import (
    is_range_query,
    numeric_value,
    parse_range_spec,
    range_spec,
    tuple_in_range,
)
from repro.network import Network
from repro.sim import MINUTES, SECONDS, Simulator


class TestSpecCodec:
    def test_roundtrip(self):
        assert parse_range_spec(range_spec(10.0, 20.0)) == (10.0, 20.0)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            range_spec(20.0, 10.0)

    def test_non_range_values(self):
        assert parse_range_spec("plain") is None
        assert parse_range_spec("10") is None
        assert parse_range_spec("a..b") is None
        assert parse_range_spec("20..10") is None  # inverted

    def test_is_range_query(self):
        assert is_range_query("1..2")
        assert not is_range_query("Test")
        assert not is_range_query("sensor-*")

    def test_degenerate_point_range(self):
        assert parse_range_spec("5.0..5.0") == (5.0, 5.0)


class TestNumericValue:
    def test_plain_numbers(self):
        assert numeric_value("1024") == 1024.0
        assert numeric_value("-3.5") == -3.5

    def test_non_numeric(self):
        assert numeric_value("Test") is None
        assert numeric_value("") is None


class TestTupleInRange:
    def test_matching(self):
        t = ("repro:FakeAdvertisement", "Name", "15")
        assert tuple_in_range(t, "repro:FakeAdvertisement", "Name", 10, 20)

    def test_wrong_type_or_attribute(self):
        t = ("repro:FakeAdvertisement", "Name", "15")
        assert not tuple_in_range(t, "jxta:PA", "Name", 10, 20)
        assert not tuple_in_range(t, "repro:FakeAdvertisement", "Id", 10, 20)

    def test_out_of_range(self):
        t = ("repro:FakeAdvertisement", "Name", "25")
        assert not tuple_in_range(t, "repro:FakeAdvertisement", "Name", 10, 20)

    def test_non_numeric_value_never_matches(self):
        t = ("repro:FakeAdvertisement", "Name", "Test")
        assert not tuple_in_range(t, "repro:FakeAdvertisement", "Name", 0, 1e9)


class TestEndToEndRangeDiscovery:
    def _overlay(self, seed=12):
        sim = Simulator(seed=seed)
        network = Network(sim)
        overlay = build_overlay(
            sim, network, PlatformConfig(),
            OverlayDescription(
                rendezvous_count=5, edge_count=4,
                edge_attachment=[0, 1, 2, 3],
            ),
        )
        overlay.start()
        sim.run(until=10 * MINUTES)
        assert overlay.group.property_2_satisfied()
        return sim, overlay

    def test_range_query_collects_matching_values(self):
        sim, overlay = self._overlay()
        # publishers advertise numeric capacities 100, 150, 900
        for edge, capacity in zip(overlay.edges[:3], (100, 150, 900)):
            edge.discovery.publish(FakeAdvertisement(str(capacity)))
        sim.run(until=sim.now + 2 * MINUTES)

        results = []
        overlay.edges[3].discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", range_spec(50, 200),
            callback=lambda advs, lat: results.append(advs),
            threshold=3, timeout=20 * SECONDS,
        )
        sim.run(until=sim.now + 1 * MINUTES)
        # threshold 3 cannot be met (only two values in range): the
        # timeout delivers the partial results
        assert len(results) == 1
        assert sorted(a.name for a in results[0]) == ["100", "150"]

    def test_range_query_exact_threshold_returns_fast(self):
        sim, overlay = self._overlay()
        for edge, capacity in zip(overlay.edges[:3], (100, 150, 900)):
            edge.discovery.publish(FakeAdvertisement(str(capacity)))
        sim.run(until=sim.now + 2 * MINUTES)
        results = []
        overlay.edges[3].discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", range_spec(50, 1000),
            callback=lambda advs, lat: results.append((advs, lat)),
            threshold=3, timeout=20 * SECONDS,
        )
        sim.run(until=sim.now + 1 * MINUTES)
        advs, latency = results[0]
        assert len(advs) == 3
        assert latency < 1.0  # resolved by the walk, not the timeout

    def test_empty_range_times_out(self):
        sim, overlay = self._overlay()
        overlay.edges[0].discovery.publish(FakeAdvertisement("500"))
        sim.run(until=sim.now + 2 * MINUTES)
        timeouts = []
        overlay.edges[3].discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", range_spec(0, 10),
            callback=lambda advs, lat: pytest.fail("nothing should match"),
            on_timeout=lambda: timeouts.append(1),
            timeout=15 * SECONDS,
        )
        sim.run(until=sim.now + 1 * MINUTES)
        assert timeouts == [1]

    def test_range_query_cost_is_linear_walk(self):
        sim, overlay = self._overlay()
        overlay.edges[0].discovery.publish(FakeAdvertisement("500"))
        sim.run(until=sim.now + 2 * MINUTES)
        # force the walk: the issuing rendezvous must not already index
        # the tuple (replica placement may have put it there)
        overlay.rendezvous[3].discovery.srdi.clear()
        results = []
        overlay.edges[3].discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", range_spec(400, 600),
            callback=lambda advs, lat: results.append(advs),
            threshold=1, timeout=20 * SECONDS,
        )
        sim.run(until=sim.now + 1 * MINUTES)
        assert results
        # the range resolution walked the peerview
        assert sum(r.discovery.walk_steps for r in overlay.rendezvous) >= 1
