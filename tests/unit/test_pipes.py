"""Unit tests for the Pipe Binding Protocol and pipe service."""

import pytest

from repro.advertisement.pipeadv import (
    PIPE_TYPE_PROPAGATE,
    PIPE_TYPE_UNICAST,
    PipeAdvertisement,
)
from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.ids import IDFactory
from repro.network import Network
from repro.pipes import PipeBindingAdvertisement, PipeMessage
from repro.sim import MINUTES, SECONDS, Simulator


def build(r=4, e=3, attachment=None, seed=6):
    sim = Simulator(seed=seed)
    network = Network(sim)
    overlay = build_overlay(
        sim, network, PlatformConfig(),
        OverlayDescription(
            rendezvous_count=r, edge_count=e,
            edge_attachment=attachment or list(range(e)),
        ),
    )
    overlay.start()
    sim.run(until=10 * MINUTES)
    assert overlay.group.property_2_satisfied()
    ids = IDFactory(sim.rng.stream("test.pipes"))
    return sim, overlay, ids


class TestBindingAdvertisement:
    def test_roundtrip(self):
        from repro.advertisement import parse_advertisement

        ids = IDFactory(__import__("random").Random(1))
        adv = PipeBindingAdvertisement(
            ids.new_pipe_id(), ids.new_peer_id(), "tcp://h:1"
        )
        assert parse_advertisement(adv.to_xml()) == adv

    def test_unique_key_per_binder(self):
        import random

        ids = IDFactory(random.Random(1))
        pipe = ids.new_pipe_id()
        a = PipeBindingAdvertisement(pipe, ids.new_peer_id(), "tcp://a:1")
        b = PipeBindingAdvertisement(pipe, ids.new_peer_id(), "tcp://b:1")
        assert a.unique_key() != b.unique_key()

    def test_empty_address_rejected(self):
        import random

        ids = IDFactory(random.Random(1))
        with pytest.raises(ValueError):
            PipeBindingAdvertisement(ids.new_pipe_id(), ids.new_peer_id(), "")


class TestUnicastPipe:
    def test_bind_resolve_send(self):
        sim, overlay, ids = build()
        receiver, sender = overlay.edges[0], overlay.edges[1]
        adv = PipeAdvertisement(ids.new_pipe_id(), "chat", PIPE_TYPE_UNICAST)

        inbox = []
        receiver.pipes.bind_input(adv, lambda m: inbox.append(m.payload))
        sim.run(until=sim.now + 2 * MINUTES)  # SRDI propagation

        pipes = []
        sender.pipes.resolve_output(adv, callback=pipes.append)
        sim.run(until=sim.now + 1 * MINUTES)
        assert len(pipes) == 1

        assert pipes[0].send("hello") == 1
        sim.run(until=sim.now + 10 * SECONDS)
        assert inbox == ["hello"]

    def test_double_bind_rejected(self):
        sim, overlay, ids = build()
        adv = PipeAdvertisement(ids.new_pipe_id(), "x")
        overlay.edges[0].pipes.bind_input(adv, lambda m: None)
        with pytest.raises(ValueError):
            overlay.edges[0].pipes.bind_input(adv, lambda m: None)

    def test_unresolvable_pipe_times_out(self):
        sim, overlay, ids = build()
        adv = PipeAdvertisement(ids.new_pipe_id(), "ghost")
        timeouts = []
        overlay.edges[0].pipes.resolve_output(
            adv,
            callback=lambda p: pytest.fail("must not resolve"),
            on_timeout=lambda: timeouts.append(1),
            timeout=20.0,
        )
        sim.run(until=sim.now + 1 * MINUTES)
        assert timeouts == [1]

    def test_closed_pipe_stops_delivering(self):
        sim, overlay, ids = build()
        receiver, sender = overlay.edges[0], overlay.edges[1]
        adv = PipeAdvertisement(ids.new_pipe_id(), "closeme")
        inbox = []
        pipe_in = receiver.pipes.bind_input(adv, lambda m: inbox.append(m))
        sim.run(until=sim.now + 2 * MINUTES)
        pipes = []
        sender.pipes.resolve_output(adv, callback=pipes.append)
        sim.run(until=sim.now + 1 * MINUTES)
        pipe_in.close()
        pipes[0].send("late")
        sim.run(until=sim.now + 10 * SECONDS)
        assert inbox == []

    def test_local_loopback(self):
        sim, overlay, ids = build()
        peer = overlay.edges[0]
        adv = PipeAdvertisement(ids.new_pipe_id(), "self")
        inbox = []
        peer.pipes.bind_input(adv, lambda m: inbox.append(m.payload))
        sim.run(until=sim.now + 2 * MINUTES)
        pipes = []
        peer.pipes.resolve_output(adv, callback=pipes.append)
        sim.run(until=sim.now + 1 * MINUTES)
        pipes[0].send(42)
        sim.run(until=sim.now + 1 * SECONDS)
        assert inbox == [42]


class TestPropagatePipe:
    def test_fan_out_to_all_binders(self):
        sim, overlay, ids = build(e=3, attachment=[0, 1, 2])
        r1, r2, sender = overlay.edges
        adv = PipeAdvertisement(
            ids.new_pipe_id(), "events", PIPE_TYPE_PROPAGATE
        )
        inbox1, inbox2 = [], []
        r1.pipes.bind_input(adv, lambda m: inbox1.append(m.payload))
        r2.pipes.bind_input(adv, lambda m: inbox2.append(m.payload))
        sim.run(until=sim.now + 2 * MINUTES)

        pipes = []
        sender.pipes.resolve_output(
            adv, callback=pipes.append, threshold=2, timeout=20.0
        )
        sim.run(until=sim.now + 1 * MINUTES)
        assert len(pipes) == 1
        delivered_to = pipes[0].send("tick")
        sim.run(until=sim.now + 10 * SECONDS)
        assert delivered_to == 2
        assert inbox1 == ["tick"]
        assert inbox2 == ["tick"]


class TestPipeMessage:
    def test_size_accounts_for_payload(self):
        import random

        ids = IDFactory(random.Random(1))
        pid = ids.new_pipe_id()
        small = PipeMessage(pid, "x")
        big = PipeMessage(pid, "x" * 2000)
        assert big.size_bytes() > small.size_bytes() + 1500
