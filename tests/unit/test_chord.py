"""Unit tests for the Chord baseline."""

import math

import pytest

from repro.baselines.chord import (
    ChordNode,
    ChordRing,
    M,
    RING,
    chord_key,
    in_half_open_interval,
    in_open_interval,
)
from repro.network import Network
from repro.network.latency import ConstantLatency
from repro.network.site import place_nodes
from repro.sim import MINUTES, Simulator


def build_ring(n, static=True, seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.002))
    ring = ChordRing(sim, net, place_nodes(n), static_build=static)
    ring.start()
    return sim, ring


class TestIntervals:
    def test_open_interval_simple(self):
        assert in_open_interval(5, 1, 10)
        assert not in_open_interval(1, 1, 10)
        assert not in_open_interval(10, 1, 10)

    def test_open_interval_wrapping(self):
        assert in_open_interval(RING - 1, RING - 10, 5)
        assert in_open_interval(2, RING - 10, 5)
        assert not in_open_interval(100, RING - 10, 5)

    def test_half_open_includes_upper(self):
        assert in_half_open_interval(10, 1, 10)
        assert not in_half_open_interval(1, 1, 10)


class TestChordKey:
    def test_range(self):
        for name in ("a", "b", "JuxMem", "x" * 50):
            assert 0 <= chord_key(name) < RING

    def test_deterministic(self):
        assert chord_key("x") == chord_key("x")


class TestStaticRing:
    def test_static_build_is_correct(self):
        _, ring = build_ring(16)
        assert ring.is_correct()

    def test_lookup_reaches_responsible_node(self):
        sim, ring = build_ring(16)
        key = chord_key("resource")
        results = []
        ring.members[0].lookup(key, lambda addr, k, hops: results.append((addr, k, hops)))
        sim.run(until=1 * MINUTES)
        assert len(results) == 1
        addr, k, hops = results[0]
        # verify against ground truth: first member with key >= lookup key
        keys = [m.key for m in ring.members]
        import bisect
        expected = ring.members[bisect.bisect_left(keys, key) % len(keys)]
        assert addr == expected.address

    def test_lookup_hops_logarithmic(self):
        sim, ring = build_ring(64)
        hops_seen = []
        for i in range(50):
            ring.members[i % 64].lookup(
                chord_key(f"res-{i}"),
                lambda addr, k, hops: hops_seen.append(hops),
            )
        sim.run(until=5 * MINUTES)
        assert len(hops_seen) == 50
        mean_hops = sum(hops_seen) / len(hops_seen)
        # Chord's expected path length is ~0.5 * log2(n) = 3 for n=64
        assert mean_hops <= math.log2(64)
        assert max(hops_seen) <= 2 * math.log2(64)

    def test_put_get_roundtrip(self):
        sim, ring = build_ring(16)
        ring.members[3].put("juxmem-block-1", {"data": 42})
        sim.run(until=1 * MINUTES)
        results = []
        ring.members[9].get(
            "juxmem-block-1",
            lambda found, value, hops: results.append((found, value, hops)),
        )
        sim.run(until=2 * MINUTES)
        assert results and results[0][0] is True
        assert results[0][1] == {"data": 42}

    def test_get_missing_key(self):
        sim, ring = build_ring(8)
        results = []
        ring.members[0].get(
            "never-stored",
            lambda found, value, hops: results.append(found),
        )
        sim.run(until=1 * MINUTES)
        assert results == [False]

    def test_single_node_ring(self):
        sim, ring = build_ring(1)
        results = []
        ring.members[0].put("x", 1)
        sim.run(until=1 * MINUTES)
        ring.members[0].get("x", lambda f, v, h: results.append((f, v)))
        sim.run(until=2 * MINUTES)
        assert results == [(True, 1)]


class TestDynamicJoin:
    def test_join_and_stabilize_converges(self):
        sim, ring = build_ring(8, static=False)
        sim.run(until=60 * MINUTES)
        assert ring.is_correct()

    def test_lookups_work_after_convergence(self):
        sim, ring = build_ring(8, static=False)
        sim.run(until=60 * MINUTES)
        results = []
        ring.members[2].put("k", "v")
        sim.run(until=sim.now + 1 * MINUTES)
        ring.members[5].get("k", lambda f, v, h: results.append((f, v)))
        sim.run(until=sim.now + 2 * MINUTES)
        assert results == [(True, "v")]


class TestValidation:
    def test_bad_key_rejected(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        node = place_nodes(1)[0]
        with pytest.raises(ValueError):
            ChordNode(sim, net, node, "chord://x:1", key=RING)

    def test_empty_ring_rejected(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        with pytest.raises(ValueError):
            ChordRing(sim, net, [])
