"""Unit tests for the extension experiments (churn, transport, complex,
calibration) — small runs and render contracts."""

import pytest

from repro.experiments import (
    calibration_exp,
    churn_exp,
    complex_queries,
    transport_exp,
)
from repro.sim import MINUTES


class TestChurnExperiment:
    def test_run_point_reports_kills_and_samples(self):
        point = churn_exp.run_point(
            r=8, mean_session=10 * MINUTES, queries=8, seed=3,
            warmup=8 * MINUTES,
        )
        assert point.kills >= 1
        assert 0.0 <= point.success <= 1.0
        assert point.r == 8

    def test_render(self):
        point = churn_exp.ChurnPoint(
            r=8, mean_session_minutes=5.0, success=0.75, mean_ms=20.0,
            kills=10, revives=9, walk_steps=42,
        )
        text = churn_exp.render([point])
        assert "75%" in text
        assert "5min" in text


class TestTransportExperiment:
    def test_tcp_point(self):
        point = transport_exp.run_point(
            "tcp", r=4, queries=5, seed=2, warmup=8 * MINUTES
        )
        assert point.transport == "tcp"
        assert point.poll_interval == 0.0
        assert point.success == 1.0
        assert point.mean_ms < 100.0

    def test_http_point_pays_polling(self):
        point = transport_exp.run_point(
            "http", r=4, queries=5, seed=2, warmup=8 * MINUTES,
            poll_interval=1.0,
        )
        assert point.success == 1.0
        assert point.mean_ms > 100.0

    def test_render(self):
        points = [
            transport_exp.TransportPoint("tcp", 0.0, 13.0, 1.0),
            transport_exp.TransportPoint("http", 2.0, 1900.0, 1.0),
        ]
        text = transport_exp.render(points)
        assert "tcp" in text and "http (poll 2.0s)" in text


class TestComplexQueriesExperiment:
    def test_run_point_returns_three_kinds(self):
        points = complex_queries.run_point(r=6, queries=5, seed=2)
        kinds = [p.kind for p in points]
        assert kinds == ["exact", "wildcard", "range"]
        for p in points:
            assert p.mean_ms > 0

    def test_exact_finds_one_wildcard_finds_all(self):
        points = complex_queries.run_point(
            r=6, publishers=4, queries=5, seed=2
        )
        by = {p.kind: p for p in points}
        assert by["exact"].results_found == 1
        assert by["wildcard"].results_found == 4
        assert by["range"].results_found == 2


class TestCalibrationExperiment:
    def test_run_point_fields(self):
        point = calibration_exp.run_point(
            r=12, referral_count=3, random_probe_count=1,
            duration=20 * MINUTES, seed=2,
        )
        assert point.peak <= 11
        assert point.plateau <= point.peak
        assert point.kbps_per_rdv > 0

    def test_render_orders_rows(self):
        points = [
            calibration_exp.CalibrationPoint(
                r=40, referral_count=rc, random_probe_count=rpc,
                peak=39.0, peak_minutes=10.0, plateau=38.0,
                kbps_per_rdv=2.0,
            )
            for rc in (1, 3)
            for rpc in (0, 1)
        ]
        text = calibration_exp.render(points)
        assert "referral_count" in text
        assert text.count("39") >= 4
