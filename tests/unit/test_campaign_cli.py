"""CLI wiring tests: ``jxta-repro sweep`` and ``--seeds N``."""

import pytest

from repro.experiments import cli as experiments_cli


class TestSweepDelegation:
    def test_sweep_list_via_main_entry(self, capsys):
        """'jxta-repro sweep --list' reaches the campaign CLI."""
        assert experiments_cli.main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3", "ablation", "churn", "all"):
            assert name in out

    def test_sweep_rejects_unknown_campaign(self, capsys):
        with pytest.raises(SystemExit):
            experiments_cli.main(["sweep", "not-a-campaign"])

    def test_sweep_absent_without_subcommand(self, capsys):
        """The classic entry still rejects 'sweep'-less unknown names."""
        with pytest.raises(SystemExit):
            experiments_cli.main(["not-an-experiment"])


class TestSeedsOption:
    def test_seeds_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            experiments_cli.main(["table1", "--seeds", "0"])

    def test_cross_seed_spread_printed_and_exported(self, tmp_path, capsys):
        rc = experiments_cli.main(
            ["table1", "--seeds", "2", "--out", str(tmp_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cross-seed spread over seeds 1..2" in out
        assert "lookup_latency_ms" in out
        spread = tmp_path / "table1-seeds.csv"
        assert spread.exists()
        header = spread.read_text().splitlines()[0]
        assert header == "campaign,group,metric,n,mean,std,ci95"
