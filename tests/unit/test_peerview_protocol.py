"""Unit tests for the peerview protocol (Algorithm 1)."""

import pytest

from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.network import Network
from repro.network.latency import ConstantLatency
from repro.sim import MINUTES, SECONDS, Simulator


def build_rdv_overlay(
    r,
    topology="chain",
    seed=1,
    latency=0.002,
    **config_overrides,
):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(latency))
    config = PlatformConfig().with_overrides(**config_overrides)
    overlay = build_overlay(
        sim, net, config, OverlayDescription(rendezvous_count=r, topology=topology)
    )
    overlay.start()
    return sim, overlay


class TestConvergence:
    def test_small_chain_satisfies_property_2(self):
        sim, overlay = build_rdv_overlay(8)
        sim.run(until=10 * MINUTES)
        assert overlay.group.property_2_satisfied()
        assert overlay.group.peerview_sizes() == [7] * 8

    def test_tree_converges_too(self):
        sim, overlay = build_rdv_overlay(8, topology="tree")
        sim.run(until=10 * MINUTES)
        assert overlay.group.property_2_satisfied()

    def test_star_converges(self):
        sim, overlay = build_rdv_overlay(8, topology="star")
        sim.run(until=10 * MINUTES)
        assert overlay.group.property_2_satisfied()

    def test_singleton_rendezvous_is_trivially_complete(self):
        sim, overlay = build_rdv_overlay(1)
        sim.run(until=5 * MINUTES)
        assert overlay.group.property_2_satisfied()
        assert overlay.group.peerview_sizes() == [0]

    def test_deterministic_given_seed(self):
        def run(seed):
            sim, overlay = build_rdv_overlay(6, seed=seed)
            sim.run(until=5 * MINUTES)
            return [
                [p.short() for p in r.view.ordered_ids()]
                for r in overlay.rendezvous
            ]

        assert run(3) == run(3)
        # different seed gives different peer IDs
        assert run(3) != run(4)


class TestExpirationDynamics:
    def test_short_expiration_causes_decay(self):
        # with a PVE_EXPIRATION shorter than the refresh supply, the
        # peerview cannot hold every peer (the paper's core finding)
        sim, overlay = build_rdv_overlay(
            16,
            pve_expiration=2 * MINUTES,
            startup_jitter=5 * SECONDS,
        )
        sim.run(until=4 * MINUTES)
        peak = max(overlay.group.peerview_sizes())
        sim.run(until=20 * MINUTES)
        # views fluctuate below the maximum: Property (2) violated
        assert not overlay.group.property_2_satisfied()
        assert max(overlay.group.peerview_sizes()) <= peak

    def test_long_expiration_keeps_views_full(self):
        # Figure 4 left: PVE_EXPIRATION > experiment duration keeps l at r-1
        sim, overlay = build_rdv_overlay(16, pve_expiration=10_000 * MINUTES)
        sim.run(until=30 * MINUTES)
        assert overlay.group.property_2_satisfied()


class TestProtocolTraffic:
    def test_probes_generate_responses_and_referrals(self):
        sim, overlay = build_rdv_overlay(6)
        sim.run(until=5 * MINUTES)
        protos = [r.peerview_protocol for r in overlay.rendezvous]
        assert sum(p.probes_sent for p in protos) > 0
        assert sum(p.responses_sent for p in protos) > 0
        assert sum(p.referrals_sent for p in protos) > 0

    def test_updates_sent_once_happy(self):
        # once l >= HAPPY_SIZE the rand()%3 branch produces updates
        sim, overlay = build_rdv_overlay(10)
        sim.run(until=20 * MINUTES)
        assert sum(
            r.peerview_protocol.updates_sent for r in overlay.rendezvous
        ) > 0

    def test_stop_halts_probing(self):
        sim, overlay = build_rdv_overlay(4)
        sim.run(until=3 * MINUTES)
        rdv = overlay.rendezvous[0]
        sent_before = rdv.peerview_protocol.probes_sent
        rdv.stop()
        sim.run(until=20 * MINUTES)
        assert rdv.peerview_protocol.probes_sent == sent_before

    def test_routes_learned_for_view_members(self):
        sim, overlay = build_rdv_overlay(6)
        sim.run(until=5 * MINUTES)
        rdv = overlay.rendezvous[0]
        for member in rdv.view.known_ids():
            assert rdv.router.has_route(member)


class TestFailureHandling:
    def test_dead_peer_eventually_expires_from_views(self):
        sim, overlay = build_rdv_overlay(
            6, pve_expiration=3 * MINUTES
        )
        sim.run(until=6 * MINUTES)
        victim = overlay.rendezvous[2]
        victim_id = victim.peer_id
        victim.crash()
        sim.run(until=20 * MINUTES)
        for rdv in overlay.rendezvous:
            if rdv is victim:
                continue
            assert victim_id not in rdv.view, (
                f"{rdv.name} still lists the crashed rendezvous"
            )

    def test_seed_down_at_bootstrap_does_not_wedge(self):
        # rdv-0 (the chain seed of rdv-1) never starts; others still
        # find each other through rdv-1's retries and referrals
        sim, overlay = build_rdv_overlay(5)
        # stop rdv-0 immediately (it was started by build_rdv_overlay)
        overlay.rendezvous[0].crash()
        sim.run(until=15 * MINUTES)
        alive = overlay.rendezvous[1:]
        sizes = [r.view.size for r in alive]
        assert all(s == 3 for s in sizes), sizes
