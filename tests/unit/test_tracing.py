"""Unit tests for the message tracer."""

import pytest

from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.network import Network
from repro.sim import MINUTES, Simulator
from repro.sim.tracing import MessageTracer


def build(seed=21):
    sim = Simulator(seed=seed)
    network = Network(sim)
    overlay = build_overlay(
        sim, network, PlatformConfig(), OverlayDescription(rendezvous_count=4)
    )
    return sim, network, overlay


class TestMessageTracer:
    def test_captures_peerview_traffic(self):
        sim, network, overlay = build()
        tracer = MessageTracer(network)
        overlay.start()
        sim.run(until=3 * MINUTES)
        assert len(tracer) > 0
        assert tracer.count("PeerViewProbe") > 0
        assert tracer.count("PeerViewResponse") > 0

    def test_payload_type_filter(self):
        sim, network, overlay = build()
        tracer = MessageTracer(network, payload_types=("PeerViewProbe",))
        overlay.start()
        sim.run(until=3 * MINUTES)
        assert len(tracer) == tracer.count("PeerViewProbe")
        assert tracer.count("PeerViewResponse") == 0

    def test_address_filter(self):
        sim, network, overlay = build()
        target = overlay.rendezvous[0].address
        tracer = MessageTracer(network, addresses=(target,))
        overlay.start()
        sim.run(until=3 * MINUTES)
        assert len(tracer) > 0
        for entry in tracer.entries:
            assert target in (entry.src, entry.dst)

    def test_detach_stops_capture(self):
        sim, network, overlay = build()
        tracer = MessageTracer(network)
        overlay.start()
        sim.run(until=1 * MINUTES)
        count = len(tracer)
        tracer.detach()
        sim.run(until=5 * MINUTES)
        assert len(tracer) == count

    def test_limit_truncates(self):
        sim, network, overlay = build()
        tracer = MessageTracer(network, limit=5)
        overlay.start()
        sim.run(until=5 * MINUTES)
        assert len(tracer) == 5
        assert tracer.truncated
        assert "truncated" in tracer.format()

    def test_between_and_format(self):
        sim, network, overlay = build()
        tracer = MessageTracer(network)
        overlay.start()
        sim.run(until=2 * MINUTES)
        window = tracer.between(0.0, 60.0)
        assert all(0.0 <= e.time <= 60.0 for e in window)
        text = tracer.format(last=3)
        assert len(text.splitlines()) <= 4

    def test_bad_limit_rejected(self):
        sim, network, _ = build()
        with pytest.raises(ValueError):
            MessageTracer(network, limit=0)

    def test_traffic_still_flows_while_traced(self):
        sim, network, overlay = build()
        MessageTracer(network)
        overlay.start()
        sim.run(until=10 * MINUTES)
        assert overlay.group.property_2_satisfied()
