#!/usr/bin/env python
"""Quickstart: build a JXTA overlay, publish, and discover.

Deploys a small overlay on the simulated Grid'5000 network — six
rendezvous peers bootstrapped as a chain, plus two edge peers — waits
for the peerview protocol to converge (Property (2) of the paper),
publishes an advertisement from one edge and discovers it from the
other, exactly like the paper's worked example in §3.3.

Run:  python examples/quickstart.py
"""

from repro.advertisement import PeerAdvertisement
from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.network import Network
from repro.sim import MINUTES, Simulator


def main() -> None:
    # 1. a simulator and the 9-site Grid'5000 network model
    sim = Simulator(seed=42)
    network = Network(sim)

    # 2. describe and deploy the overlay (the ADAGE step):
    #    6 rendezvous peers in a chain + publisher/searcher edges
    overlay = build_overlay(
        sim,
        network,
        PlatformConfig(),
        OverlayDescription(
            rendezvous_count=6,
            edge_count=2,
            topology="chain",
            edge_attachment=[0, 1],  # E1 on R1, E2 on R2 (as in Fig. 2)
        ),
    )
    overlay.start()

    # 3. let the peerview protocol converge
    sim.run(until=10 * MINUTES)
    print(f"peerview sizes: {overlay.group.peerview_sizes()}")
    print(f"Property (2) satisfied: {overlay.group.property_2_satisfied()}")

    # 4. E1 publishes a peer advertisement indexed on Name=Test
    publisher, searcher = overlay.edges
    adv = PeerAdvertisement(publisher.peer_id, publisher.group_id, "Test")
    publisher.discovery.publish(adv)
    sim.run(until=sim.now + 1 * MINUTES)  # SRDI push + LC-DHT replication

    # 5. E2 discovers it through the LC-DHT
    def on_found(advertisements, latency):
        found = advertisements[0]
        print(f"discovered {found.name!r} (peer {found.peer_id.short()}) "
              f"in {latency * 1e3:.1f} ms")

    searcher.discovery.get_remote_advertisements(
        "jxta:PA", "Name", "Test", callback=on_found
    )
    sim.run(until=sim.now + 1 * MINUTES)

    print(f"total network messages: {network.stats.messages_sent}")


if __name__ == "__main__":
    main()
