#!/usr/bin/env python
"""Service discovery under volatility — the paper's future-work case.

The paper's conclusion asks how the LC-DHT's walk fall-back behaves
"under high volatility".  This example builds a 20-rendezvous overlay
whose rendezvous peers churn with a heavy-tailed (Pareto) session law,
while a service provider keeps its advertisement published and a
client issues periodic lookups.  Each lookup reports whether it hit
the fast O(1) path or needed the walk, and whether it survived a
replica-peer crash.

Run:  python examples/volatile_services.py
"""

from repro.advertisement import FakeAdvertisement
from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.network import Network
from repro.network.churn import ChurnProcess, ParetoChurn
from repro.sim import HOURS, MINUTES, Simulator


def main() -> None:
    sim = Simulator(seed=5)
    network = Network(sim)
    overlay = build_overlay(
        sim,
        network,
        PlatformConfig(),
        OverlayDescription(
            rendezvous_count=20, edge_count=2, edge_attachment=[0, 10]
        ),
    )
    overlay.start()
    provider, client = overlay.edges
    sim.run(until=15 * MINUTES)

    provider.discovery.publish(
        FakeAdvertisement("printing-service", payload="color;duplex"),
        expiration=12 * HOURS,
    )
    sim.run(until=sim.now + 2 * MINUTES)

    # churn every rendezvous except the two the edges lease to
    protected = {0, 10}
    victims = {
        rdv.name: rdv
        for i, rdv in enumerate(overlay.rendezvous)
        if i not in protected
    }
    churn = ChurnProcess(
        sim,
        ParetoChurn(median_session=8 * MINUTES, mean_downtime=3 * MINUTES),
        targets=list(victims),
        on_kill=lambda name: victims[name].crash(),
        on_revive=lambda name: victims[name].start(),
    )
    churn.start()

    outcomes = {"fast": 0, "walked": 0, "failed": 0}

    def lookup(remaining: int) -> None:
        client.cache.flush()
        walks_before = sum(
            rdv.discovery.walk_steps
            for rdv in overlay.rendezvous if rdv.running
        )

        def on_found(advertisements, latency):
            walks_after = sum(
                rdv.discovery.walk_steps
                for rdv in overlay.rendezvous if rdv.running
            )
            kind = "walked" if walks_after > walks_before else "fast"
            outcomes[kind] += 1
            print(f"t={sim.now / 60:5.1f}min lookup ok "
                  f"({kind}, {latency * 1e3:.1f} ms)")
            if remaining > 1:
                sim.schedule(60.0, lookup, remaining - 1)

        def on_timeout():
            outcomes["failed"] += 1
            print(f"t={sim.now / 60:5.1f}min lookup FAILED (timeout)")
            if remaining > 1:
                sim.schedule(60.0, lookup, remaining - 1)

        client.discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", "printing-service",
            callback=on_found, on_timeout=on_timeout, timeout=10.0,
        )

    lookup(20)
    sim.run(until=sim.now + 30 * MINUTES)
    churn.stop()

    print()
    print(f"outcomes over 20 lookups: {outcomes}")
    print(f"rendezvous kills: {churn.kill_count}, "
          f"revives: {churn.revive_count}")


if __name__ == "__main__":
    main()
