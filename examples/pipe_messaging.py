#!/usr/bin/env python
"""Pipe messaging: JXTA's application channels over the LC-DHT.

Demonstrates the Pipe Binding Protocol and the Peer Information
Protocol on the reproduction stack:

* a worker edge binds a unicast *task* pipe; a coordinator resolves it
  and submits work;
* every worker binds a shared propagate *events* pipe; the coordinator
  broadcasts a shutdown notice down it;
* the coordinator pings each worker through the peer information
  service and prints the status table.

Run:  python examples/pipe_messaging.py
"""

from repro.advertisement.pipeadv import (
    PIPE_TYPE_PROPAGATE,
    PIPE_TYPE_UNICAST,
    PipeAdvertisement,
)
from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.ids import IDFactory
from repro.metrics import render_table
from repro.network import Network
from repro.sim import MINUTES, SECONDS, Simulator


def main() -> None:
    sim = Simulator(seed=23)
    network = Network(sim)
    overlay = build_overlay(
        sim, network, PlatformConfig(),
        OverlayDescription(rendezvous_count=6, edge_count=4),
    )
    overlay.start()
    sim.run(until=10 * MINUTES)

    workers = overlay.edges[:3]
    coordinator = overlay.edges[3]
    ids = IDFactory(sim.rng.stream("example.pipe-ids"))

    # --- unicast task pipe: one queue per worker ----------------------
    task_advs = []
    for i, worker in enumerate(workers):
        adv = PipeAdvertisement(ids.new_pipe_id(), f"tasks-{i}", PIPE_TYPE_UNICAST)
        task_advs.append(adv)
        worker.pipes.bind_input(
            adv,
            lambda m, w=worker.name: print(f"  {w} got task: {m.payload}"),
        )

    # --- propagate events pipe: everyone listens ----------------------
    events_adv = PipeAdvertisement(
        ids.new_pipe_id(), "cluster-events", PIPE_TYPE_PROPAGATE
    )
    for worker in workers:
        worker.pipes.bind_input(
            events_adv,
            lambda m, w=worker.name: print(f"  {w} saw event: {m.payload}"),
        )
    sim.run(until=sim.now + 2 * MINUTES)  # bindings propagate via SRDI

    # --- submit one task per worker ------------------------------------
    print("submitting tasks:")
    for i, adv in enumerate(task_advs):
        coordinator.pipes.resolve_output(
            adv,
            callback=lambda pipe, i=i: pipe.send(f"compute block {i}"),
        )
    sim.run(until=sim.now + 30 * SECONDS)

    # --- broadcast the shutdown event -----------------------------------
    print("broadcasting shutdown:")
    coordinator.pipes.resolve_output(
        events_adv,
        callback=lambda pipe: pipe.send("shutdown at 18:00"),
        threshold=3,
        timeout=20.0,
    )
    sim.run(until=sim.now + 30 * SECONDS)

    # --- ping every worker (Peer Information Protocol) -----------------
    rows = []
    for worker in workers:
        coordinator.peerinfo.ping(
            worker.peer_id,
            callback=lambda info, rtt: rows.append(
                [info.name, f"{info.uptime / 60:.0f} min",
                 info.messages_in, info.messages_out, f"{rtt * 1e3:.1f} ms"]
            ),
        )
    sim.run(until=sim.now + 30 * SECONDS)
    print()
    print(render_table(["peer", "uptime", "in", "out", "rtt"], rows))


if __name__ == "__main__":
    main()
