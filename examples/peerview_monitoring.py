#!/usr/bin/env python
"""Peerview convergence monitoring — the paper's §4.1 in miniature.

Deploys 45 rendezvous peers (the overlay size at which the paper first
observes Property (2) failing with default parameters), attaches the
event-log instrumentation to every peer, and prints the live l(t)
table, the Property (2) verdict over time, and the add/remove phase
statistics of Figure 3 (right).

Run:  python examples/peerview_monitoring.py
"""

from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.metrics import EventLog, attach_peerview_logger, render_table
from repro.network import Network
from repro.sim import MINUTES, Simulator

R = 45
DURATION_MIN = 50


def main() -> None:
    sim = Simulator(seed=11)
    network = Network(sim)
    config = PlatformConfig()
    overlay = build_overlay(
        sim, network, config, OverlayDescription(rendezvous_count=R)
    )
    log = EventLog()
    for rdv in overlay.rendezvous:
        attach_peerview_logger(log, rdv.name, rdv.view)
    overlay.start()

    rows = []
    for minute in range(0, DURATION_MIN + 1, 5):
        sim.run(until=minute * MINUTES)
        sizes = overlay.group.peerview_sizes()
        rows.append(
            [
                minute,
                min(sizes),
                f"{sum(sizes) / len(sizes):.1f}",
                max(sizes),
                "yes" if overlay.group.property_2_satisfied() else "no",
            ]
        )
    print(render_table(
        ["t (min)", "min l", "mean l", "max l", "Property (2)"], rows
    ))

    adds = log.records(kind="peerview.add")
    removes = log.records(kind="peerview.remove")
    first_remove = min((r.time for r in removes), default=float("inf"))
    print()
    print(f"peerview events: {len(adds)} adds, {len(removes)} removes")
    print(f"first removal at {first_remove / 60:.1f} min "
          f"(PVE_EXPIRATION = {config.pve_expiration / 60:.0f} min)")
    print(f"protocol traffic: {network.stats.messages_sent} messages, "
          f"{network.stats.bytes_sent / 1e6:.1f} MB")
    print(f"  inter-site: {network.stats.inter_site_messages}, "
          f"intra-site: {network.stats.intra_site_messages}")


if __name__ == "__main__":
    main()
