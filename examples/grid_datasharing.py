#!/usr/bin/env python
"""Grid data-sharing service discovery (a JuxMem-like workload).

The paper's motivation is the use of JXTA for grid middleware; its
authors built JuxMem, a grid data-sharing service whose providers
advertise storage through JXTA pipe advertisements and whose clients
discover providers by attribute.  This example reproduces that
workload shape on the reproduction stack:

* 12 rendezvous peers across all nine Grid'5000 sites;
* 9 provider edges, one per site, each publishing a propagate-pipe
  advertisement named ``juxmem-<site>`` plus a fake "cluster profile"
  advertisement carrying capacity metadata;
* a client edge that (1) discovers a specific site's provider by
  exact name, (2) discovers *all* providers with a wildcard query.

Run:  python examples/grid_datasharing.py
"""

from repro.advertisement import FakeAdvertisement, PipeAdvertisement
from repro.advertisement.pipeadv import PIPE_TYPE_PROPAGATE
from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.ids import IDFactory
from repro.network import Network
from repro.network.site import GRID5000_SITES
from repro.sim import HOURS, MINUTES, Simulator


def main() -> None:
    sim = Simulator(seed=7)
    network = Network(sim)
    overlay = build_overlay(
        sim,
        network,
        PlatformConfig(),
        OverlayDescription(
            rendezvous_count=12,
            edge_count=10,  # 9 providers + 1 client
        ),
    )
    overlay.start()
    sim.run(until=10 * MINUTES)
    assert overlay.group.property_2_satisfied()

    providers = overlay.edges[:9]
    client = overlay.edges[9]
    ids = IDFactory(sim.rng.stream("example.pipes"))

    # each provider advertises its storage pipe and a capacity profile
    for provider, site in zip(providers, GRID5000_SITES):
        pipe = PipeAdvertisement(
            ids.new_pipe_id(), f"juxmem-{site.name}", PIPE_TYPE_PROPAGATE
        )
        provider.discovery.publish(pipe, expiration=12 * HOURS)
        provider.discovery.publish(
            FakeAdvertisement(
                f"capacity-{site.name}", payload=f"ram=4GB;site={site.name}"
            ),
            expiration=12 * HOURS,
        )
    sim.run(until=sim.now + 2 * MINUTES)  # SRDI propagation

    # 1. exact lookup: the Rennes provider's pipe
    def on_rennes(advertisements, latency):
        print(f"[exact] found {advertisements[0].name!r} "
              f"in {latency * 1e3:.1f} ms")

    client.discovery.get_remote_advertisements(
        "jxta:PipeAdvertisement", "Name", "juxmem-rennes",
        callback=on_rennes,
    )
    sim.run(until=sim.now + 1 * MINUTES)

    # 2. wildcard: every juxmem provider in the grid
    def on_all(advertisements, latency):
        names = sorted(a.name for a in advertisements)
        print(f"[wildcard] {len(names)} providers in {latency * 1e3:.1f} ms:")
        for name in names:
            print(f"  - {name}")

    client.discovery.get_remote_advertisements(
        "jxta:PipeAdvertisement", "Name", "juxmem-*",
        callback=on_all, threshold=9, timeout=30.0,
    )
    sim.run(until=sim.now + 1 * MINUTES)

    # 3. capacity query against the metadata advertisements
    def on_capacity(advertisements, latency):
        print(f"[capacity] {advertisements[0].name}: "
              f"{advertisements[0].payload}")

    client.discovery.get_remote_advertisements(
        "repro:FakeAdvertisement", "Name", "capacity-sophia",
        callback=on_capacity,
    )
    sim.run(until=sim.now + 1 * MINUTES)


if __name__ == "__main__":
    main()
