#!/usr/bin/env python
"""Peer groups: scoped overlays inside a JXTA network.

"A 'peer group' is a set of peers with a common interest, and
providing common services" (§3.1).  JuxMem — the grid data-sharing
middleware that motivated the paper — organizes providers into one
sub-group per cluster, each with its own discovery scope.

This example builds a 6-rendezvous Net group, then forms two
sub-groups ("storage" and "compute") among subsets of those peers.
Each sub-group runs its own peerview and LC-DHT: an advertisement
published in "storage" is invisible in "compute" and in the Net group,
and one peer participates in both sub-groups under different roles.

Run:  python examples/subgroups.py
"""

from repro.advertisement import FakeAdvertisement
from repro.config import PlatformConfig
from repro.deploy import OverlayDescription, build_overlay
from repro.ids import IDFactory
from repro.network import Network
from repro.sim import MINUTES, Simulator


def main() -> None:
    sim = Simulator(seed=33)
    network = Network(sim)
    overlay = build_overlay(
        sim, network, PlatformConfig(),
        OverlayDescription(rendezvous_count=6),
    )
    overlay.start()
    sim.run(until=10 * MINUTES)
    print(f"Net group converged: {overlay.group.property_2_satisfied()}")

    ids = IDFactory(sim.rng.stream("example.groups"))
    storage_gid = ids.new_peer_group_id()
    compute_gid = ids.new_peer_group_id()
    r = overlay.rendezvous

    # storage sub-group: rdv-0, rdv-1, rdv-2 (rdv-0 anchors)
    storage = [
        r[0].join_group(storage_gid, role="rendezvous"),
        r[1].join_group(storage_gid, role="rendezvous", seeds=[r[0].address]),
        r[2].join_group(storage_gid, role="rendezvous", seeds=[r[0].address]),
    ]
    # compute sub-group: rdv-3 anchors, rdv-4 joins; rdv-2 is a member
    # of BOTH groups — rendezvous in storage, plain edge in compute
    compute = [
        r[3].join_group(compute_gid, role="rendezvous"),
        r[4].join_group(compute_gid, role="rendezvous", seeds=[r[3].address]),
    ]
    bridging = r[2].join_group(compute_gid, role="edge", seeds=[r[3].address])
    sim.run(until=sim.now + 10 * MINUTES)

    print(f"storage peerviews: {[c.view.size for c in storage]} (expect 2)")
    print(f"compute peerviews: {[c.view.size for c in compute]} (expect 1)")
    print(f"bridge peer leased in compute: {bridging.lease_client.connected}")

    # publish a volume in the storage group only
    storage[1].discovery.publish(
        FakeAdvertisement("volume-17", payload="size=4096")
    )
    sim.run(until=sim.now + 2 * MINUTES)

    def search(label, context_or_discovery):
        found = []
        context_or_discovery.get_remote_advertisements(
            "repro:FakeAdvertisement", "Name", "volume-17",
            callback=lambda advs, lat: found.append(lat),
            on_timeout=lambda: found.append(None),
            timeout=15.0,
        )
        sim.run(until=sim.now + 30.0)
        outcome = (
            f"found in {found[0] * 1e3:.1f} ms" if found and found[0] is not None
            else "NOT FOUND (correctly scoped)"
        )
        print(f"  {label}: {outcome}")

    print("searching for volume-17:")
    search("from storage member", storage[2].discovery)
    search("from compute member", compute[1].discovery)
    search("from Net group", r[5].discovery)
    # the bridge peer sees it through its storage membership only
    search("bridge peer via storage", r[2].context(storage_gid).discovery)
    search("bridge peer via compute", bridging.discovery)


if __name__ == "__main__":
    main()
