# Convenience targets for the jxta-repro repository.

PYTHON ?= python

.PHONY: install test bench examples experiments experiments-full clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for f in examples/*.py; do \
		echo "== $$f"; \
		$(PYTHON) $$f || exit 1; \
	done

# reduced, shape-preserving runs of every paper artefact (minutes)
experiments:
	$(PYTHON) -m repro.experiments.cli all --out results-ci

# paper-scale runs: 580 peers, two-hour timelines, full sweeps (~1 h)
experiments-full:
	$(PYTHON) -m repro.experiments.cli all --full --out results

clean:
	rm -rf .pytest_cache .benchmarks results-ci
	find . -name __pycache__ -type d -exec rm -rf {} +
