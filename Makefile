# Convenience targets for the jxta-repro repository.

PYTHON ?= python
# worker pool width for campaign sweeps (make experiments JOBS=8)
JOBS ?= $(shell $(PYTHON) -c "import os; print(os.cpu_count() or 1)")

.PHONY: install test smoke-faults smoke-campaign smoke-load fuzz-smoke coverage bench profile examples experiments experiments-full load-full clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

# pythonpath = ["src"] in pyproject.toml makes the src layout
# importable without an install or a manual PYTHONPATH prefix
test:
	$(PYTHON) -m pytest -x -q

smoke-faults:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.faults_exp --smoke

# campaign orchestrator acceptance checks: parallel determinism,
# kill-mid-flight + --resume, >= 2x speedup at --jobs 4 (needs 4 CPUs)
smoke-campaign:
	$(PYTHON) scripts/campaign_smoke.py

# workload subsystem acceptance checks: 40-rdv load run with SLO
# assertions, wheel/heap byte-identity, record/replay oracle, and
# sweep --jobs parallel determinism (see docs/WORKLOADS.md)
smoke-load:
	$(PYTHON) scripts/load_smoke.py

# fuzzer acceptance checks: canary find+shrink, committed-corpus
# replay under both schedulers, fuzz-digest identity across --jobs
# and REPRO_SCHEDULER (see docs/FUZZING.md)
fuzz-smoke:
	$(PYTHON) scripts/fuzz_smoke.py

# line coverage of src/repro with a floor (CI installs pytest-cov;
# locally this is a no-op with a hint when the plugin is missing)
COV_FLOOR ?= 70
coverage:
	@$(PYTHON) -c "import pytest_cov" 2>/dev/null \
		|| { echo "pytest-cov not installed; skipping (pip install pytest-cov)"; exit 0; } \
		&& $(PYTHON) -m pytest -q --cov=repro --cov-report=term \
			--cov-fail-under=$(COV_FLOOR)

# Runs the kernel/protocol benchmarks and appends the numbers to the
# committed trajectory (BENCH_kernel.json).  Override BENCH_LABEL to
# tag the entry, e.g. `make bench BENCH_LABEL="PR 3"`.
BENCH_LABEL ?= workspace

bench:
	mkdir -p .benchmarks
	$(PYTHON) -m pytest benchmarks/ --benchmark-only \
		--benchmark-json=.benchmarks/latest.json
	$(PYTHON) scripts/bench_trajectory.py record .benchmarks/latest.json \
		--label "$(BENCH_LABEL)"
	$(PYTHON) scripts/bench_trajectory.py show

# Memory/allocation profile of the benchmark workloads: runs them once
# under tracemalloc (several times slower than `make bench`, so the
# timings are NOT recorded) and prints peak RSS, tracemalloc peak and
# allocation-block counts per benchmark from the JSON export.
profile:
	mkdir -p .benchmarks
	REPRO_BENCH_TRACEMALLOC=1 $(PYTHON) -m pytest benchmarks/ \
		--benchmark-only --benchmark-json=.benchmarks/profile.json
	$(PYTHON) scripts/bench_trajectory.py memory .benchmarks/profile.json

examples:
	@for f in examples/*.py; do \
		echo "== $$f"; \
		PYTHONPATH=src $(PYTHON) $$f || exit 1; \
	done

# Both targets run through the repro.campaign orchestrator: one task
# per experiment module, $(JOBS) workers, crash-safe JSONL store under
# <out>/campaign/.  A killed run continues where it died:
#   PYTHONPATH=src $(PYTHON) -m repro.experiments.cli sweep all --out results-ci --resume

# reduced, shape-preserving runs of every paper artefact (minutes)
experiments:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli sweep all \
		--jobs $(JOBS) --out results-ci

# paper-scale runs: 580 peers, two-hour timelines, full sweeps
# (~1 h serial; scales down with $(JOBS))
experiments-full:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli sweep all --full \
		--jobs $(JOBS) --out results

# the acceptance-floor load run: >= 100k open-loop requests at r = 150
# with p50/p95/p99 + timeout-rate reporting (minutes of wall clock)
load-full:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli load --full

clean:
	rm -rf .pytest_cache .benchmarks results-ci campaign-runs
	find . -name __pycache__ -type d -exec rm -rf {} +
