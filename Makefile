# Convenience targets for the jxta-repro repository.

PYTHON ?= python

.PHONY: install test smoke-faults bench examples experiments experiments-full clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

# pythonpath = ["src"] in pyproject.toml makes the src layout
# importable without an install or a manual PYTHONPATH prefix
test:
	$(PYTHON) -m pytest -x -q

smoke-faults:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.faults_exp --smoke

# Runs the kernel/protocol benchmarks and appends the numbers to the
# committed trajectory (BENCH_kernel.json).  Override BENCH_LABEL to
# tag the entry, e.g. `make bench BENCH_LABEL="PR 3"`.
BENCH_LABEL ?= workspace

bench:
	mkdir -p .benchmarks
	$(PYTHON) -m pytest benchmarks/ --benchmark-only \
		--benchmark-json=.benchmarks/latest.json
	$(PYTHON) scripts/bench_trajectory.py record .benchmarks/latest.json \
		--label "$(BENCH_LABEL)"
	$(PYTHON) scripts/bench_trajectory.py show

examples:
	@for f in examples/*.py; do \
		echo "== $$f"; \
		PYTHONPATH=src $(PYTHON) $$f || exit 1; \
	done

# reduced, shape-preserving runs of every paper artefact (minutes)
experiments:
	$(PYTHON) -m repro.experiments.cli all --out results-ci

# paper-scale runs: 580 peers, two-hour timelines, full sweeps (~1 h)
experiments-full:
	$(PYTHON) -m repro.experiments.cli all --full --out results

clean:
	rm -rf .pytest_cache .benchmarks results-ci
	find . -name __pycache__ -type d -exec rm -rf {} +
