# Convenience targets for the jxta-repro repository.

PYTHON ?= python

.PHONY: install test smoke-faults bench examples experiments experiments-full clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

# pythonpath = ["src"] in pyproject.toml makes the src layout
# importable without an install or a manual PYTHONPATH prefix
test:
	$(PYTHON) -m pytest -x -q

smoke-faults:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.faults_exp --smoke

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for f in examples/*.py; do \
		echo "== $$f"; \
		$(PYTHON) $$f || exit 1; \
	done

# reduced, shape-preserving runs of every paper artefact (minutes)
experiments:
	$(PYTHON) -m repro.experiments.cli all --out results-ci

# paper-scale runs: 580 peers, two-hour timelines, full sweeps (~1 h)
experiments-full:
	$(PYTHON) -m repro.experiments.cli all --full --out results

clean:
	rm -rf .pytest_cache .benchmarks results-ci
	find . -name __pycache__ -type d -exec rm -rf {} +
